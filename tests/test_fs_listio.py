"""Scatter-gather list I/O (readv/writev) and the request-path bugfix sweep.

Covers the tentpole end-to-end — data-plane region-list mapping with
cross-region coalescing, the facade and client-session entry points, the
per-submission request header — plus the satellites: unified range
validation, deprecation-free internals, write/read layout-accounting
symmetry, and the fifo scheduler's array path.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

import numpy as np
import pytest

from repro.config import DiskParams, FSConfig
from repro.disk.disk import SimulatedDisk
from repro.disk.model import BlockRequest
from repro.disk.scheduler import ElevatorScheduler, FifoScheduler
from repro.errors import ConfigError, ReproError
from repro.fs.client import ClientSession
from repro.fs.dataplane import DataPlane
from repro.fs.redbud import RedbudFileSystem
from repro.units import KiB

from tests.conftest import small_config

BS = 4 * KiB


def _extent_tuples(f):
    """Every slot's extents as comparable tuples."""
    return [
        [(e.logical, e.physical, e.length, e.unwritten) for e in smap]
        for smap in f.maps
    ]


def _covered_blocks(requests):
    """The set of physical blocks a request list touches."""
    out: set[int] = set()
    for r in requests:
        out.update(range(r.start, r.end))
    return out


# ---------------------------------------------------------------------------
# Satellite: unified range validation
# ---------------------------------------------------------------------------

class TestUnifiedValidation:
    """All four data ops reject bad ranges with one exception type."""

    @pytest.fixture(params=["batched", "legacy"])
    def plane(self, request):
        return DataPlane(small_config(execution=request.param))

    def test_zero_and_negative_lengths(self, plane):
        f = plane.create_file("/v")
        plane.write(f, 0, 0, BS)
        for nbytes in (0, -BS):
            with pytest.raises(ReproError):
                plane.write(f, 0, 0, nbytes)
            with pytest.raises(ReproError):
                plane.read(f, 0, nbytes)
            with pytest.raises(ReproError):
                plane.writev(f, 0, [(0, nbytes)])
            with pytest.raises(ReproError):
                plane.readv(f, [(0, nbytes)])

    def test_negative_offsets(self, plane):
        """The read path used to raise ValueError here; now ReproError."""
        f = plane.create_file("/v")
        plane.write(f, 0, 0, BS)
        with pytest.raises(ReproError):
            plane.write(f, 0, -BS, BS)
        with pytest.raises(ReproError):
            plane.read(f, -BS, BS)
        with pytest.raises(ReproError):
            plane.writev(f, 0, [(0, BS), (-BS, BS)])
        with pytest.raises(ReproError):
            plane.readv(f, [(0, BS), (-BS, BS)])

    def test_empty_region_lists(self, plane):
        f = plane.create_file("/v")
        with pytest.raises(ReproError):
            plane.writev(f, 0, [])
        with pytest.raises(ReproError):
            plane.readv(f, [])

    def test_rejected_lists_have_no_effect(self, plane):
        """A list with one bad region is rejected atomically, before any
        mapping: no extents appear, no counters move."""
        f = plane.create_file("/v")
        with pytest.raises(ReproError):
            plane.writev(f, 0, [(0, BS), (BS, 0)])
        assert f.mapped_blocks == 0
        assert plane.metrics.count("fs.writes") == 0
        assert plane.metrics.count("fs.listio_writes") == 0


# ---------------------------------------------------------------------------
# Tentpole: data-plane readv/writev
# ---------------------------------------------------------------------------

class TestDataPlaneListIO:
    @pytest.fixture(params=["batched", "legacy"])
    def execution(self, request):
        return request.param

    def test_writev_equals_scalar_loop(self, execution):
        """One writev maps exactly like the in-order loop of writes: same
        extents, same size, same per-byte counters."""
        regions = [(0, BS), (8 * BS, 2 * BS), (3 * BS, BS), (16 * BS, 3 * BS)]
        pa = DataPlane(small_config(execution=execution))
        pb = DataPlane(small_config(execution=execution))
        fa = pa.create_file("/a")
        fb = pb.create_file("/b")
        for off, n in regions:
            pa.write(fa, 7, off, n)
        reqs = pb.writev(fb, 7, regions)
        assert _extent_tuples(fa) == _extent_tuples(fb)
        assert fa.size_bytes == fb.size_bytes
        assert pa.metrics.count("fs.writes") == pb.metrics.count("fs.writes")
        assert pa.metrics.count("fs.bytes_written") == pb.metrics.count(
            "fs.bytes_written"
        )
        assert sum(r.nblocks for r in reqs) == 7
        assert all(r.is_write for r in reqs)
        assert pb.metrics.count("fs.listio_writes") == 1
        assert pb.metrics.count("fs.listio_regions") == len(regions)

    def test_readv_equals_scalar_loop(self, execution):
        regions = [(0, 2 * BS), (10 * BS, BS), (4 * BS, 2 * BS)]
        plane = DataPlane(small_config(execution=execution))
        f = plane.create_file("/r")
        for off, n in regions:
            plane.write(f, 0, off, n)
        scalar = []
        for off, n in regions:
            scalar.extend(plane.read(f, off, n))
        vectored = plane.readv(f, regions)
        assert _covered_blocks(vectored) == _covered_blocks(scalar)
        assert not any(r.is_write for r in vectored)
        assert plane.metrics.count("fs.reads") == 2 * len(regions)
        assert plane.metrics.count("fs.listio_reads") == 1

    def test_readv_skips_holes(self, execution):
        plane = DataPlane(small_config(execution=execution))
        f = plane.create_file("/h")
        plane.write(f, 0, 0, BS)
        reqs = plane.readv(f, [(0, BS), (100 * BS, 4 * BS)])
        assert sum(r.nblocks for r in reqs) == 1

    def test_cross_region_coalescing(self):
        """Physically adjacent runs merge across non-adjacent logical
        regions: the win PVFS list I/O gets from one request carrying the
        whole list."""
        plane = DataPlane(small_config(execution="batched"))
        f = plane.create_file("/c", width=1)
        # Descending logical order: the stream's allocations chain
        # physically (each miss allocates right after the previous run), so
        # logical blocks 8..11 and 0..3 end up back to back on disk.
        regions = [(8 * BS, 4 * BS), (0, 4 * BS)]
        wrote = plane.writev(f, 0, regions)
        assert len(wrote) == 1  # even the write list merged into one request
        reqs = plane.readv(f, regions)
        assert len(reqs) == 1
        assert reqs[0].nblocks == 8
        # The scalar loop cannot merge across its two calls.
        scalar = plane.read(f, 8 * BS, 4 * BS) + plane.read(f, 0, 4 * BS)
        assert len(scalar) == 2
        assert plane.metrics.count("fs.coalesced_requests") >= 2

    def test_listio_on_deleted_file(self, execution):
        plane = DataPlane(small_config(execution=execution))
        f = plane.create_file("/d")
        plane.write(f, 0, 0, BS)
        plane.close_file(f)
        plane.delete_file(f)
        with pytest.raises(ReproError):
            plane.writev(f, 0, [(0, BS)])
        with pytest.raises(ReproError):
            plane.readv(f, [(0, BS)])


# ---------------------------------------------------------------------------
# Facade and client session
# ---------------------------------------------------------------------------

class TestRedbudFacade:
    def test_writev_readv_round_trip(self):
        fs = RedbudFileSystem(small_config())
        fs.create("/f")
        regions = [(0, 4 * BS), (16 * BS, 4 * BS)]
        wrote = fs.writev("/f", regions)
        assert wrote > 0.0
        read = fs.readv("/f", regions)
        assert read > 0.0
        assert fs.file_handle("/f").size_bytes == 20 * BS

    def test_empty_list_rejected(self):
        fs = RedbudFileSystem(small_config())
        fs.create("/f")
        with pytest.raises(ReproError):
            fs.writev("/f", [])
        with pytest.raises(ReproError):
            fs.readv("/f", [])


class TestClientListIO:
    def test_one_layout_lookup_per_list(self):
        fs = RedbudFileSystem(small_config())
        client = ClientSession(fs, client_id=1)
        client.create("/f")
        base = client.stats.mds_requests
        regions = [(i * 8 * BS, BS) for i in range(16)]
        client.writev("/f", regions)  # one layout miss for the whole list
        assert client.stats.mds_requests == base + 1
        client.readv("/f", regions)  # extend bumped the generation: one miss
        assert client.stats.mds_requests == base + 2
        hits = client.stats.layout_cache_hits
        client.readv("/f", regions)  # cached: no MDS traffic at all
        assert client.stats.mds_requests == base + 2
        assert client.stats.layout_cache_hits == hits + 1

    def test_write_read_accounting_symmetry(self):
        """Satellite 3: a write performs the same layout lookup a read
        does, so hit/miss accounting is consistent across the two sides."""
        fs = RedbudFileSystem(small_config())
        client = ClientSession(fs, client_id=0)
        client.create("/f")
        client.write("/f", 0, BS)  # miss (first lookup), then generation bump
        client.write("/f", 0, BS)  # overwrite: miss again (bumped), no extend
        start_hits = client.stats.layout_cache_hits
        start_reqs = client.stats.mds_requests
        client.write("/f", 0, BS)
        client.read("/f", 0, BS)
        assert client.stats.layout_cache_hits == start_hits + 2
        assert client.stats.mds_requests == start_reqs


# ---------------------------------------------------------------------------
# Tentpole: per-submission request header billing
# ---------------------------------------------------------------------------

class TestRequestHeader:
    def _disk(self, header_s: float) -> SimulatedDisk:
        return SimulatedDisk(DiskParams(request_header_s=header_s))

    def test_default_is_inert(self):
        disk = self._disk(0.0)
        disk.submit_batch([BlockRequest(0, 8, is_write=True)])
        disk.submit_one(64, 8, False)
        assert disk.metrics.count("disk.request_headers") == 0
        assert disk.metrics.total("disk.header_s") == 0.0

    def test_one_header_per_submission(self):
        header = 1e-3
        batch = self._disk(header)
        loop = self._disk(header)
        requests = [BlockRequest(i * 512, 8, is_write=False) for i in range(10)]
        batched_s = batch.submit_batch(requests)
        loop_s = sum(loop.submit_batch([r]) for r in requests)
        assert batch.metrics.count("disk.request_headers") == 1
        assert loop.metrics.count("disk.request_headers") == 10
        # Same physical work, 9 extra headers on the loop side.
        assert loop_s - batched_s == pytest.approx(9 * header)
        assert loop.busy_s - batch.busy_s == pytest.approx(9 * header)

    def test_submit_one_and_arrays_bill_identically(self):
        header = 5e-4
        one = self._disk(header)
        arr = self._disk(header)
        t1 = one.submit_one(128, 16, True)
        t2 = arr.submit_arrays(
            np.array([128], dtype=np.int64),
            np.array([16], dtype=np.int64),
            np.array([True]),
        )
        assert t1 == t2
        assert one.busy_s == arr.busy_s
        assert one.metrics.count("disk.request_headers") == 1
        assert arr.metrics.count("disk.request_headers") == 1

    def test_negative_header_rejected(self):
        with pytest.raises(ConfigError):
            DiskParams(request_header_s=-1e-6)

    def test_header_charged_through_dataplane(self):
        cfg = small_config()
        cfg = replace(cfg, disk=replace(cfg.disk, request_header_s=1e-3))
        plane = DataPlane(cfg)
        f = plane.create_file("/h")
        requests = plane.write(f, 0, 0, 64 * BS)
        plane.array.submit_batch(requests)
        # One submission; one header per disk the batch touched.
        touched = len({r.start // cfg.disk.capacity_blocks for r in requests})
        assert plane.metrics.count("disk.request_headers") == touched


# ---------------------------------------------------------------------------
# Satellite: deprecated execution-flag aliases
# ---------------------------------------------------------------------------

class TestDeprecationSweep:
    def test_boolean_views_warn(self):
        cfg = small_config()
        for name in ("io_batching", "vectorized_disks", "meta_batching"):
            with pytest.warns(DeprecationWarning, match=name):
                getattr(cfg, name)

    @pytest.mark.filterwarnings("error::DeprecationWarning")
    @pytest.mark.parametrize("execution", ["batched", "legacy"])
    def test_request_path_is_warning_free(self, execution):
        """No internal layer consults the deprecated aliases: the whole
        request path runs with DeprecationWarning promoted to an error."""
        fs = RedbudFileSystem(small_config(execution=execution))
        fs.create("/w")
        regions = [(0, BS), (8 * BS, 2 * BS)]
        fs.write("/w", 0, 4 * BS)
        fs.read("/w", 0, 4 * BS)
        fs.writev("/w", regions)
        fs.readv("/w", regions)
        fs.fsync("/w")
        client = ClientSession(fs, client_id=2)
        client.writev("/w", regions)
        client.readv("/w", regions)


# ---------------------------------------------------------------------------
# Tentpole: fifo scheduler array path
# ---------------------------------------------------------------------------

class TestFifoArrangeArrays:
    def _requests(self):
        return [
            BlockRequest(0, 8, is_write=True),
            BlockRequest(8, 8, is_write=True),   # back-to-back: merges
            BlockRequest(16, 4, is_write=False),  # kind change: never merges
            BlockRequest(20, 4, is_write=False),  # merges with previous
            BlockRequest(100, 4, is_write=False),  # far away: new run
            BlockRequest(60, 4, is_write=False),  # arrival order kept: no sort
        ]

    def test_matches_object_path(self):
        from repro.config import SchedulerParams

        params = SchedulerParams(kind="fifo")
        sched = FifoScheduler(params)
        requests = self._requests()
        merged = sched.arrange(requests)
        s, b, w = sched.arrange_arrays(
            np.array([r.start for r in requests], dtype=np.int64),
            np.array([r.nblocks for r in requests], dtype=np.int64),
            np.array([r.is_write for r in requests]),
        )
        assert [(r.start, r.nblocks, r.is_write) for r in merged] == list(
            zip(s.tolist(), b.tolist(), w.tolist())
        )

    def test_fifo_disks_use_array_path(self):
        from repro.config import SchedulerParams

        cfg = replace(small_config(), scheduler=SchedulerParams(kind="fifo"))
        plane = DataPlane(cfg)
        assert plane.array._arrays_capable
        # A 2-request batch on one disk (too far apart to merge) drives the
        # fifo scheduler's new arrange_arrays fast path.
        plane.array.submit_batch(
            [BlockRequest(0, 4, is_write=True), BlockRequest(4000, 4, is_write=True)]
        )
        assert plane.array.io_profile["batches_vectorized"] >= 1

    def test_elevator_and_fifo_differ_on_unsorted_batches(self):
        """Sanity: the fifo path must not silently sort (that would be the
        elevator)."""
        from repro.config import SchedulerParams

        params = SchedulerParams(kind="fifo")
        requests = [BlockRequest(1000, 4, False), BlockRequest(0, 4, False)]
        fifo = FifoScheduler(params).arrange(requests)
        elev = ElevatorScheduler(params).arrange(requests)
        assert [r.start for r in fifo] == [1000, 0]
        assert [r.start for r in elev] == [0, 1000]
