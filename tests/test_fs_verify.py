"""Online fsck: catches leaks, double allocations and namespace damage."""

import pytest

from repro.alloc.registry import POLICY_NAMES
from repro.block.extent import Extent
from repro.fs.dataplane import DataPlane
from repro.fs.redbud import RedbudFileSystem
from repro.fs.verify import check_dataplane, check_mds
from repro.units import KiB, MiB
from repro.workloads.streams import SharedFileMicrobench

from tests.conftest import small_config


class TestDataplaneFsck:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_clean_after_churn(self, policy):
        plane = DataPlane(small_config(policy=policy))
        bench = SharedFileMicrobench(
            nstreams=4, file_bytes=4 * MiB, write_request_bytes=16 * KiB
        )
        f = bench.create_shared_file(plane)
        bench.phase1_write(plane, f)
        plane.close_file(f)
        g = plane.create_file("/other", expected_bytes=1 * MiB)
        plane.write(g, 9, 0, 1 * MiB)
        plane.fsync(g)
        report = check_dataplane(plane)
        report.raise_if_dirty()
        assert report.checked_extents > 0

    def test_detects_double_ownership(self):
        plane = DataPlane(small_config(policy="vanilla"))
        a = plane.create_file("/a")
        plane.write(a, 1, 0, 64 * KiB)
        b = plane.create_file("/b")
        ext = a.maps[0].extents()[0]
        # Corrupt: map file b onto file a's physical blocks.
        b.maps[0].insert(Extent(0, ext.physical, ext.length))
        report = check_dataplane(plane)
        assert not report.clean
        assert any("owned by both" in e for e in report.errors)

    def test_detects_mapping_of_free_blocks(self):
        plane = DataPlane(small_config(policy="vanilla"))
        a = plane.create_file("/a")
        plane.write(a, 1, 0, 64 * KiB)
        ext = a.maps[0].extents()[0]
        plane.fsm.free(ext.physical, ext.length)  # corrupt the books
        report = check_dataplane(plane, strict_accounting=False)
        assert not report.clean
        assert any("maps free blocks" in e for e in report.errors)

    def test_raise_if_dirty(self):
        plane = DataPlane(small_config(policy="vanilla"))
        a = plane.create_file("/a")
        plane.write(a, 1, 0, 64 * KiB)
        ext = a.maps[0].extents()[0]
        plane.fsm.free(ext.physical, ext.length)
        with pytest.raises(AssertionError):
            check_dataplane(plane, strict_accounting=False).raise_if_dirty()


class TestMdsFsck:
    @pytest.mark.parametrize("layout", ["normal", "embedded"])
    def test_clean_after_namespace_churn(self, layout):
        fs = RedbudFileSystem(small_config(layout=layout))
        fs.mkdir("/d")
        for i in range(60):
            fs.create(f"/d/f{i}")
        for i in range(0, 60, 3):
            fs.unlink(f"/d/f{i}")
        fs.rename("/d/f1", "/d/renamed")
        report = check_mds(fs.mds)
        report.raise_if_dirty()
        assert report.checked_inodes > 0

    def test_detects_dangling_entry_embedded(self):
        fs = RedbudFileSystem(small_config(layout="embedded"))
        fs.mkdir("/d")
        inode = fs.mds.create(fs.dir_handle("/d"), "f")
        del fs.mds.layout._inodes[inode.ino]  # corrupt
        report = check_mds(fs.mds)
        assert any("dangling" in e for e in report.errors)

    def test_detects_fill_mismatch_normal(self):
        fs = RedbudFileSystem(small_config(layout="normal"))
        fs.mkdir("/d")
        fs.create("/d/f")
        d = fs.dir_handle("/d")
        d.fill[0] += 1  # corrupt the occupancy counter
        report = check_mds(fs.mds)
        assert any("fill says" in e for e in report.errors)


class TestFindingCodes:
    """Each corruption class maps to a stable machine-readable code — the
    contract the layout inspector's invariant assumptions rest on."""

    def test_double_allocated_block_code(self):
        plane = DataPlane(small_config(policy="vanilla"))
        a = plane.create_file("/a")
        plane.write(a, 1, 0, 64 * KiB)
        b = plane.create_file("/b")
        ext = a.maps[0].extents()[0]
        b.maps[0].insert(Extent(0, ext.physical, ext.length))
        report = check_dataplane(plane)
        assert report.has("double-owned-block")
        assert "double-owned-block" in report.codes

    def test_dangling_extent_outside_array_code(self):
        plane = DataPlane(small_config(policy="vanilla"))
        a = plane.create_file("/a")
        plane.write(a, 1, 0, 64 * KiB)
        # Corrupt: extent pointing past the end of the disk array.
        a.maps[0].insert(Extent(10_000, plane.fsm.total_blocks + 64, 8))
        report = check_dataplane(plane, strict_accounting=False)
        assert report.has("extent-outside-array")

    def test_extent_maps_free_blocks_code(self):
        plane = DataPlane(small_config(policy="vanilla"))
        a = plane.create_file("/a")
        plane.write(a, 1, 0, 64 * KiB)
        ext = a.maps[0].extents()[0]
        plane.fsm.free(ext.physical, ext.length)
        report = check_dataplane(plane, strict_accounting=False)
        assert report.has("extent-maps-free")

    def test_orphan_embedded_inode_code(self):
        fs = RedbudFileSystem(small_config(layout="embedded"))
        fs.mkdir("/d")
        fs.create("/d/f")
        layout = fs.mds.layout
        (ino,) = [
            i for i, inode in layout._inodes.items() if inode.name == "f"
        ]
        # Corrupt: home block relocated outside every directory's content.
        layout._inodes[ino].home_block = 10**9
        report = check_mds(fs.mds)
        assert report.has("orphan-home-block")

    def test_dangling_inode_code_embedded(self):
        fs = RedbudFileSystem(small_config(layout="embedded"))
        fs.mkdir("/d")
        inode = fs.mds.create(fs.dir_handle("/d"), "f")
        del fs.mds.layout._inodes[inode.ino]
        report = check_mds(fs.mds)
        assert report.has("dangling-inode")

    def test_clean_report_has_no_codes(self):
        plane = DataPlane(small_config(policy="ondemand"))
        a = plane.create_file("/a")
        plane.write(a, 1, 0, 64 * KiB)
        plane.fsync(a)
        report = check_dataplane(plane)
        assert report.codes == set()
        assert report.clean
