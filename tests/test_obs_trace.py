"""Tracer ring buffer, disabled-mode no-op and exporter round trips."""

from __future__ import annotations

import io
import json

import pytest

from repro.fs.dataplane import DataPlane
from repro.fs.redbud import RedbudFileSystem
from repro.fs.stream import make_stream_id
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    SamplingTracer,
    TraceEvent,
    Tracer,
    chrome_trace_dict,
    coerce_tracer,
    format_breakdown,
    layer_times,
    parse_sample,
    read_chrome,
    read_jsonl,
    to_chrome,
    to_jsonl,
)
from tests.conftest import small_config


class TestTracerBuffer:
    def test_emit_records_event(self):
        tr = Tracer()
        tr.emit("disk", "read", t=1.5, dur=0.25, stream=7, start=100, nblocks=8)
        (e,) = tr.events()
        assert e == TraceEvent(
            t=1.5, layer="disk", op="read", dur=0.25, stream=7,
            attrs={"start": 100, "nblocks": 8},
        )
        assert e.end == 1.75

    def test_ring_eviction_keeps_newest(self):
        tr = Tracer(capacity=10)
        for i in range(25):
            tr.emit("alloc", "op", t=float(i))
        assert len(tr) == 10
        assert tr.emitted == 25
        assert tr.dropped == 15
        assert [e.t for e in tr.events()] == [float(i) for i in range(15, 25)]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear_resets_counters(self):
        tr = Tracer(capacity=4)
        for i in range(9):
            tr.emit("x", "y")
        tr.clear()
        assert len(tr) == 0 and tr.emitted == 0 and tr.dropped == 0

    def test_unclocked_timestamps_are_monotone(self):
        tr = Tracer()
        for _ in range(5):
            tr.emit("x", "y")
        ts = [e.t for e in tr.events()]
        assert ts == sorted(ts)

    def test_bound_clock_first_bind_wins(self):
        tr = Tracer()
        tr.bind_clock(lambda: 3.0)
        tr.bind_clock(lambda: 99.0)  # ignored: first bind wins
        assert tr.now() == 3.0
        tr.bind_clock(lambda: 99.0, override=True)
        assert tr.now() == 99.0

    def test_span_measures_clock_delta(self):
        t = {"now": 1.0}
        tr = Tracer(clock=lambda: t["now"])
        with tr.span("fs", "write", stream=3, file=1):
            t["now"] = 4.5
        (e,) = tr.events()
        assert (e.t, e.dur, e.stream, e.attrs) == (1.0, 3.5, 3, {"file": 1})


class TestDisabledMode:
    def test_null_tracer_is_inert(self):
        n = NULL_TRACER
        assert isinstance(n, NullTracer)
        assert n.enabled is False
        n.emit("disk", "read", t=1.0)
        with n.span("fs", "write"):
            pass
        assert n.events() == [] and len(n) == 0
        n.bind_clock(lambda: 5.0)
        assert n.now() == 0.0

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.emit("disk", "read")
        assert tr.events() == [] and tr.emitted == 0

    def test_coerce_tracer(self):
        assert coerce_tracer(None) is NULL_TRACER
        assert coerce_tracer(False) is NULL_TRACER
        fresh = coerce_tracer(True)
        assert isinstance(fresh, Tracer) and fresh.enabled
        mine = Tracer(capacity=7)
        assert coerce_tracer(mine) is mine


class TestSamplingTracer:
    def test_dormant_at_rest(self):
        tr = SamplingTracer(every=10)
        assert tr.enabled is False and tr.sampling is True
        tr.emit("disk", "read", t=1.0)  # unsampled path: swallowed
        with tr.span("fs", "write"):
            pass
        assert tr.events() == [] and tr.emitted == 0

    def test_sampling_flags_distinguish_tracer_kinds(self):
        # run_cells keys its serial fallback on enabled-or-sampling; a
        # plain tracer and the null tracer must not look like samplers.
        assert Tracer().sampling is False
        assert NullTracer().sampling is False
        assert SamplingTracer().sampling is True

    def test_deterministic_stream_selection(self):
        tr = SamplingTracer(every=10, offset=3)
        assert [s for s in range(40) if tr.sampled(s)] == [3, 13, 23, 33]
        everyone = SamplingTracer(every=1)
        assert all(everyone.sampled(s) for s in range(5))

    def test_offset_wraps_into_period(self):
        assert SamplingTracer(every=10, offset=13).offset == 3

    def test_armed_op_records_and_disarms(self):
        tr = SamplingTracer(every=2)
        with tr.op(4):
            assert tr.enabled is True and tr.active_stream == 4
            tr.emit("disk", "read", t=1.0, dur=0.5)
        assert tr.enabled is False and tr.active_stream is None
        (e,) = tr.events()
        assert e.stream == 4  # inherited from the armed stream

    def test_explicit_stream_wins_over_armed(self):
        tr = SamplingTracer(every=2)
        with tr.op(4):
            tr.emit("disk", "read", t=1.0, stream=9)
        (e,) = tr.events()
        assert e.stream == 9

    def test_disarms_on_exception(self):
        tr = SamplingTracer(every=2)
        with pytest.raises(RuntimeError):
            with tr.op(0):
                raise RuntimeError("boom")
        assert tr.enabled is False and tr.active_stream is None

    def test_period_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            SamplingTracer(every=0)

    def test_coerce_passes_sampler_through(self):
        tr = SamplingTracer(every=5)
        assert coerce_tracer(tr) is tr


class TestParseSample:
    def test_accepted_forms(self):
        assert parse_sample(1000) == 1000
        assert parse_sample("1/1000") == 1000
        assert parse_sample(" 1/50 ") == 50
        assert parse_sample("25") == 25

    def test_rejected_forms(self):
        with pytest.raises(ValueError, match="1/N"):
            parse_sample("2/1000")
        with pytest.raises(ValueError, match=">= 1"):
            parse_sample(0)
        with pytest.raises(ValueError, match=">= 1"):
            parse_sample("1/0")
        with pytest.raises(ValueError):
            parse_sample("1/abc")


SAMPLE = [
    TraceEvent(t=0.0, layer="disk", op="read", dur=0.5, stream=3, attrs={"start": 8}),
    TraceEvent(t=0.5, layer="alloc", op="layout_miss", stream=None, attrs={}),
    TraceEvent(t=1.0, layer="cache", op="miss", dur=0.25, stream=2,
               attrs={"nblocks": 4, "prefetch": True}),
]


class TestExporters:
    def test_jsonl_round_trip(self):
        buf = io.StringIO()
        assert to_jsonl(SAMPLE, buf) == 3
        buf.seek(0)
        assert read_jsonl(buf) == SAMPLE

    def test_jsonl_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        to_jsonl(SAMPLE, path)
        assert read_jsonl(path) == SAMPLE

    def test_chrome_dict_shape(self):
        doc = chrome_trace_dict(SAMPLE)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        first = doc["traceEvents"][0]
        assert first["ph"] == "X"
        assert first["cat"] == "disk"
        assert first["ts"] == 0.0 and first["dur"] == 0.5e6
        assert first["tid"] == 3

    def test_chrome_file_is_valid_json_and_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        to_chrome(SAMPLE, path)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 3
        back = read_chrome(path)
        # Chrome format is lossy only in float precision at 1e6 scaling;
        # these samples survive exactly.
        assert back == SAMPLE

    def test_breakdown_reports_layers(self):
        text = format_breakdown(SAMPLE)
        assert "disk" in text and "cache" in text and "alloc" in text
        assert layer_times(SAMPLE)["disk"] == pytest.approx(0.5)

    def test_breakdown_empty(self):
        assert "no trace events" in format_breakdown([])


class TestIntegration:
    def test_dataplane_emits_disk_and_alloc_events(self):
        tr = Tracer()
        plane = DataPlane(small_config(), tracer=tr)
        sid = make_stream_id(1, 2)
        f = plane.create_file("/a.dat")
        for i in range(8):
            reqs = plane.write(f, sid, i * 65536, 65536)
            plane.array.submit_batch(reqs)
        layers = {e.layer for e in tr.events()}
        assert "disk" in layers and "alloc" in layers
        # disk events carry simulated times from the disk's own timeline.
        disk_events = [e for e in tr.events() if e.layer == "disk"]
        assert all(e.dur > 0 for e in disk_events)

    def test_mds_emits_meta_events(self):
        tr = Tracer()
        fs = RedbudFileSystem(small_config(), tracer=tr)
        fs.mds.mkdir(fs.mds.root, "d")
        ops = [e.op for e in tr.events() if e.layer == "meta"]
        assert "mkdir" in ops
        assert "journal_commit" in ops

    def test_default_is_null_tracer(self):
        plane = DataPlane(small_config())
        assert plane.tracer is NULL_TRACER
        sid = make_stream_id(1, 2)
        f = plane.create_file("/a.dat")
        plane.array.submit_batch(plane.write(f, sid, 0, 65536))
        assert len(NULL_TRACER) == 0
