"""Property oracle: the legacy cache profile is the legacy cache.

The tiered/adaptive rebuild of :class:`BufferCache` (docs/CACHE.md) must
leave the ``profile="legacy"`` paths bit-for-bit: block-for-block cache
state, billing-for-billing disk time, counter-for-counter metrics, under
arbitrary interleavings of ``read`` / ``insert_blocks`` / ``invalidate``
/ ``write`` / ``read_batch`` — including ``read_batch``'s deferred-LRU
``_flush_moves`` path crossing the other mutations.

The oracle is a straight-line reimplementation of the legacy semantics
(flat LRU + fixed readahead-context table, scalar reads only, the fixed
frontier-in-region invalidation rule) kept deliberately free of fast
paths, so any behavioural drift in the production class shows up as a
state or billing divergence here.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheParams, DiskParams, SchedulerParams
from repro.disk.cache import BufferCache
from repro.disk.disk import SimulatedDisk
from repro.disk.model import BlockRequest

CAPACITY = 192


class ReferenceCache:
    """The legacy BufferCache semantics, scalar-only and fast-path-free."""

    def __init__(self, params: CacheParams, disk: SimulatedDisk) -> None:
        self.params = params
        self.disk = disk
        self.metrics = disk.metrics
        self.lru: OrderedDict[int, None] = OrderedDict()
        self.ra: OrderedDict[int, int] = OrderedDict()

    def insert(self, start: int, nblocks: int) -> None:
        if self.params.capacity_blocks == 0:
            return
        for b in range(start, start + nblocks):
            if b in self.lru:
                self.lru.move_to_end(b)
            else:
                self.lru[b] = None
        while len(self.lru) > self.params.capacity_blocks:
            self.lru.popitem(last=False)
            self.metrics.incr("cache.evictions")

    def invalidate(self, start: int, nblocks: int) -> None:
        end = start + nblocks
        for b in range(start, end):
            self.lru.pop(b, None)
        stale = [k for k in self.ra if start <= k < end]
        for k in stale:
            del self.ra[k]
        if stale:
            self.metrics.incr("cache.ra_invalidated", len(stale))

    def write(self, start: int, nblocks: int, sync: bool = True) -> float:
        self.insert(start, nblocks)
        if sync:
            return self.disk.submit(BlockRequest(start, nblocks, is_write=True))
        self.metrics.incr("cache.delayed_writes")
        return 0.0

    def read(self, start: int, nblocks: int) -> float:
        slack = 2 * self.params.readahead_max_blocks
        ctx_key = next((k for k in self.ra if k - slack <= start <= k), None)
        prefetch = 0
        if ctx_key is not None:
            window = self.ra[ctx_key]
            if start + nblocks > ctx_key:
                window = min(window * 2, self.params.readahead_max_blocks)
                prefetch = window
                del self.ra[ctx_key]
                self.ra[start + nblocks + prefetch] = window
                self.metrics.incr("cache.readahead_hits")
            else:
                self.ra.move_to_end(ctx_key)
        else:
            req_end = min(start + nblocks, self.disk.capacity_blocks)
            if any(b not in self.lru for b in range(start, req_end)):
                window = self.params.readahead_init_blocks
                prefetch = window if nblocks > 1 else 0
                self.ra[start + nblocks + prefetch] = window
        while len(self.ra) > self.params.ra_contexts:
            self.ra.popitem(last=False)

        want = nblocks + prefetch
        misses: list[BlockRequest] = []
        requested_miss = False
        run_start = -1
        for b in range(start, start + want):
            if b >= self.disk.capacity_blocks:
                break
            if b in self.lru:
                self.metrics.incr(
                    "cache.hits" if b < start + nblocks else "cache.ra_cached"
                )
                self.lru.move_to_end(b)
                if run_start >= 0:
                    misses.append(BlockRequest(run_start, b - run_start, is_write=False))
                    run_start = -1
            else:
                if b < start + nblocks:
                    self.metrics.incr("cache.misses")
                    requested_miss = True
                if run_start < 0:
                    run_start = b
        if run_start >= 0:
            end = min(start + want, self.disk.capacity_blocks)
            misses.append(BlockRequest(run_start, end - run_start, is_write=False))
        if not misses:
            return 0.0
        elapsed = self.disk.submit_batch(misses)
        for req in misses:
            self.insert(req.start, req.nblocks)
        if not requested_miss:
            self.metrics.incr("cache.prefetch_only_reads")
            self.metrics.add("cache.unbilled_prefetch_s", elapsed)
            return 0.0
        self.metrics.observe("cache.read_latency_s", elapsed)
        return elapsed


def make_pair(capacity=48):
    d1 = SimulatedDisk(DiskParams(capacity_blocks=CAPACITY), SchedulerParams())
    d2 = SimulatedDisk(DiskParams(capacity_blocks=CAPACITY), SchedulerParams())
    params = CacheParams(
        capacity_blocks=capacity,
        readahead_init_blocks=4,
        readahead_max_blocks=16,
    )
    assert params.profile == "legacy"  # the default under test
    return BufferCache(params, d1), d1, ReferenceCache(params, d2), d2


starts = st.integers(min_value=0, max_value=CAPACITY - 1)
lengths = st.integers(min_value=1, max_value=12)
runs = st.tuples(starts, lengths)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("read"), runs),
        st.tuples(st.just("read_batch"), st.lists(runs, min_size=1, max_size=10)),
        st.tuples(st.just("insert"), st.lists(starts, min_size=1, max_size=12)),
        st.tuples(st.just("invalidate"), runs),
        st.tuples(st.just("write"), st.tuples(runs, st.booleans())),
    ),
    min_size=1,
    max_size=30,
)


@given(ops)
@settings(max_examples=200, deadline=None)
def test_legacy_profile_is_the_legacy_cache(sequence):
    cache, d1, ref, d2 = make_pair()
    billed: list[float] = []
    ref_billed: list[float] = []
    for kind, arg in sequence:
        if kind == "read":
            billed.append(cache.read(*arg))
            ref_billed.append(ref.read(*arg))
        elif kind == "read_batch":
            billed.append(cache.read_batch(arg))
            batch = 0.0  # same summation order as the batch's internal loop
            for start, nblocks in arg:
                batch += ref.read(start, nblocks)
            ref_billed.append(batch)
        elif kind == "insert":
            cache.insert_blocks(arg)
            for b in arg:
                ref.insert(b, 1)
        elif kind == "invalidate":
            cache.invalidate(*arg)
            ref.invalidate(*arg)
        else:  # write
            (start, nblocks), sync = arg
            nblocks = min(nblocks, CAPACITY - start)  # writes must fit the disk
            billed.append(cache.write(start, nblocks, sync=sync))
            ref_billed.append(ref.write(start, nblocks, sync=sync))
    cache._flush_moves()
    assert billed == ref_billed  # exact bits, op for op
    assert list(cache._lru) == list(ref.lru)
    assert list(cache._ra.items()) == list(ref.ra.items())
    assert dict(d1.metrics.raw_counters()) == dict(d2.metrics.raw_counters())
    assert d1.metrics.total("cache.unbilled_prefetch_s") == d2.metrics.total(
        "cache.unbilled_prefetch_s"
    )
    assert d1.head == d2.head
    assert d1.busy_s == d2.busy_s
