"""Adaptive cache profile: per-stream readahead, SLRU tiers, dir prefetch.

Companion to tests/test_disk_cache.py (legacy profile) and
tests/test_prop_cache_profile.py (profile-off equivalence oracle); this
file pins the *new* behaviours of ``CacheParams.profile="adaptive"``
(docs/CACHE.md).
"""

import pytest

from repro.config import CacheParams, DiskParams, FSConfig, SchedulerParams
from repro.disk.cache import BufferCache
from repro.disk.disk import SimulatedDisk
from repro.errors import ConfigError
from repro.fs.profiles import redbud_mif_profile
from repro.meta.mds import MetadataServer


def make_adaptive(capacity=64, ra_init=4, ra_max=32, max_streams=1024,
                  protected_fraction=0.8):
    disk = SimulatedDisk(DiskParams(capacity_blocks=1 << 16), SchedulerParams())
    cache = BufferCache(
        CacheParams(
            capacity_blocks=capacity,
            readahead_init_blocks=ra_init,
            readahead_max_blocks=ra_max,
            profile="adaptive",
            max_streams=max_streams,
            protected_fraction=protected_fraction,
        ),
        disk,
    )
    return cache, disk


class TestPerStreamReadahead:
    def test_interleaved_streams_each_ramp(self):
        # More concurrent streams than the legacy table's 4 slots: every
        # stream keeps its own context and earns readahead.
        cache, _ = make_adaptive(capacity=4096)
        nstreams, stride = 8, 4096
        for i in range(24):
            for s in range(nstreams):
                cache.read(s * stride + i, 1)
        assert len(cache._streams) == nstreams
        assert cache.metrics.count("cache.readahead_hits") >= nstreams
        # The bulk of each stream's blocks arrived via prefetch.
        assert cache.metrics.count("cache.hits") > cache.metrics.count("cache.misses")

    def test_legacy_table_thrashes_where_streams_do_not(self):
        # The same interleaving against the legacy profile: 4 contexts for
        # 8 streams means every context is evicted before its stream
        # returns, so no read ever crosses a frontier.
        disk = SimulatedDisk(DiskParams(capacity_blocks=1 << 16), SchedulerParams())
        legacy = BufferCache(CacheParams(capacity_blocks=4096), disk)
        for i in range(24):
            for s in range(8):
                legacy.read(s * 4096 + i, 1)
        assert legacy.metrics.count("cache.readahead_hits") == 0
        assert legacy.metrics.count("cache.hits") == 0

    def test_window_decays_when_prefetch_is_evicted_before_use(self):
        cache, _ = make_adaptive(capacity=8, ra_init=4, ra_max=32)
        cache.read(0, 2)       # stream frontier 6, window 4
        cache.read(5, 2)       # crosses: ramp to 8, frontier 15
        assert list(cache._streams.values()) == [8]
        cache.insert_blocks(range(100, 108))  # wash the tiny cache
        cache.read(14, 2)      # crosses 15, but block 14 was evicted
        assert cache.metrics.count("cache.ra_decays") == 1
        assert list(cache._streams.values()) == [4]  # back to init

    def test_max_streams_lru_eviction(self):
        cache, _ = make_adaptive(max_streams=2)
        for base in (0, 1000, 2000):
            cache.read(base, 2)
        assert cache.metrics.count("cache.stream_evictions") == 1
        assert len(cache._streams) == 2
        assert all(k > 1000 for k in cache._streams)  # oldest stream gone

    def test_invalidate_drops_only_frontiers_in_region(self):
        cache, _ = make_adaptive()
        cache.read(0, 2)       # frontier 6
        cache.read(1000, 2)    # frontier 1006
        cache.invalidate(0, 500)
        assert cache.metrics.count("cache.ra_invalidated") == 1
        assert list(cache._streams) == [1006]

    def test_bucket_index_stays_consistent(self):
        cache, _ = make_adaptive(max_streams=4)
        for base in (0, 1000, 2000, 3000, 4000, 5000):
            cache.read(base, 2)
        cache.invalidate(3000, 100)
        indexed = {k for ks in cache._stream_buckets.values() for k in ks}
        assert indexed == set(cache._streams)


class TestScanResistantTiers:
    def test_second_touch_promotes_to_protected(self):
        cache, _ = make_adaptive()
        cache.read(10, 1)
        assert 10 in cache._t1 and 10 not in cache._t2
        cache.read(10, 1)
        assert 10 in cache._t2
        assert cache.metrics.count("cache.t1_hits") == 1
        assert cache.metrics.count("cache.promotions") == 1
        cache.read(10, 1)
        assert cache.metrics.count("cache.t2_hits") == 1

    def test_scan_cannot_evict_the_protected_hot_set(self):
        cache, _ = make_adaptive(capacity=16, protected_fraction=0.5)
        hot = list(range(6))
        for b in hot:
            cache.read(b, 1)
            cache.read(b, 1)   # promote
        for b in range(100, 140):  # scan 40 blocks through a 16-block cache
            cache.read(b, 1)
        assert all(b in cache._t2 for b in hot)
        snap = cache.metrics.snapshot()
        for b in hot:
            cache.read(b, 1)
        assert cache.metrics.since(snap).count("cache.misses") == 0

    def test_protected_overflow_demotes_to_probation(self):
        cache, _ = make_adaptive(capacity=16, protected_fraction=0.25)  # cap 4
        for b in range(6):
            cache.read(b, 1)
            cache.read(b, 1)
        assert len(cache._t2) == 4
        assert cache.metrics.count("cache.demotions") == 2
        assert 0 not in cache._t2 and 0 in cache._t1  # LRU head demoted

    def test_prefetched_first_use_does_not_promote(self):
        cache, _ = make_adaptive()
        cache.read(0, 2)  # prefetches blocks 2..5
        assert 2 in cache._prefetched
        cache.read(2, 1)  # first requested use: consume, stay in probation
        assert 2 in cache._t1 and 2 not in cache._t2
        assert cache.metrics.count("cache.prefetch_used_blocks") == 1
        cache.read(2, 1)  # second requested touch earns promotion
        assert 2 in cache._t2


class TestDirectoryPrefetch:
    def test_prefetch_runs_is_batched_and_unbilled(self):
        cache, disk = make_adaptive(capacity=256)
        before = disk.metrics.count("disk.read_requests")
        assert cache.prefetch_runs([(0, 8), (20, 4)]) == 0.0
        assert disk.metrics.count("disk.read_requests") > before
        assert cache.metrics.count("cache.dir_prefetches") == 1
        assert cache.metrics.count("cache.prefetch_issued_blocks") == 12
        assert cache.metrics.total("cache.unbilled_prefetch_s") > 0.0
        assert all(b in cache for b in range(8)) and all(
            b in cache for b in range(20, 24)
        )

    def test_prefetch_accuracy_counts_requested_uses(self):
        cache, _ = make_adaptive(capacity=256)
        cache.prefetch_runs([(0, 8)])
        assert cache.read(0, 8) == 0.0  # fully prefetched: free and warm
        assert cache.metrics.count("cache.prefetch_used_blocks") == 8

    def test_resident_blocks_are_not_refetched(self):
        cache, disk = make_adaptive(capacity=256)
        cache.prefetch_runs([(0, 8)])
        before = disk.metrics.count("disk.read_requests")
        cache.prefetch_runs([(0, 8)])  # fully resident: nothing to do
        assert disk.metrics.count("disk.read_requests") == before
        assert cache.metrics.count("cache.dir_prefetches") == 1

    def test_mds_prefetches_embedded_dirs_on_readdir(self):
        cfg = redbud_mif_profile().with_cache_profile("adaptive")
        mds = MetadataServer(cfg)
        d = mds.mkdir(mds.root, "d")
        for i in range(40):
            mds.create(d, f"f{i:03d}")
        mds.drop_caches()
        mds.readdir_stat(d)
        assert mds.metrics.count("cache.dir_prefetches") >= 1

    def test_legacy_mds_does_not_prefetch(self):
        mds = MetadataServer(redbud_mif_profile())
        d = mds.mkdir(mds.root, "d")
        for i in range(40):
            mds.create(d, f"f{i:03d}")
        mds.drop_caches()
        mds.readdir_stat(d)
        assert mds.metrics.count("cache.dir_prefetches") == 0


class TestConfig:
    def test_profile_validation(self):
        with pytest.raises(ConfigError):
            CacheParams(profile="arc")
        with pytest.raises(ConfigError):
            CacheParams(max_streams=0)
        with pytest.raises(ConfigError):
            CacheParams(protected_fraction=1.0)
        with pytest.raises(ConfigError):
            CacheParams(ra_contexts=0)

    def test_ra_contexts_field_bounds_the_legacy_table(self):
        disk = SimulatedDisk(DiskParams(capacity_blocks=1 << 16), SchedulerParams())
        cache = BufferCache(CacheParams(ra_contexts=2), disk)
        for base in (0, 1000, 2000):
            cache.read(base, 2)
        assert len(cache._ra) == 2

    def test_with_cache_profile_renames_config(self):
        cfg = redbud_mif_profile().with_cache_profile("adaptive", max_streams=64)
        assert cfg.cache.profile == "adaptive"
        assert cfg.cache.max_streams == 64
        assert cfg.name == "redbud-mif:adaptive-cache"

    def test_default_profile_is_legacy(self):
        assert FSConfig(name="x").cache.profile == "legacy"
