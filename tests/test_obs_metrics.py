"""Histogram sketches and their participation in Metrics phase diffing."""

from __future__ import annotations

import pytest

from repro.obs.histogram import Histogram, HistogramSnapshot, bucket_mid, bucket_of
from repro.sim.metrics import Metrics


class TestHistogram:
    def test_observe_and_summary(self):
        h = Histogram()
        for v in (1.0, 2.0, 4.0, 8.0):
            h.observe(v)
        s = h.snapshot()
        assert s.count == 4
        assert s.total == pytest.approx(15.0)
        assert s.mean == pytest.approx(3.75)
        assert s.minimum == 1.0 and s.maximum == 8.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Histogram().observe(-1.0)

    def test_zeros_tracked_separately(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(0.0)
        h.observe(4.0)
        s = h.snapshot()
        assert s.zeros == 2 and s.count == 3
        assert s.percentile(50) == 0.0

    def test_percentile_monotone_and_clamped(self):
        h = Histogram()
        for i in range(1, 101):
            h.observe(float(i))
        s = h.snapshot()
        ps = [s.percentile(p) for p in (0, 25, 50, 75, 90, 99, 100)]
        assert ps == sorted(ps)
        # Clamped into the observed range, factor-2 accurate.
        assert s.minimum <= ps[0] and ps[-1] <= s.maximum
        assert 25.0 <= s.percentile(50) <= 100.0

    def test_percentile_range_validated(self):
        s = Histogram().snapshot()
        with pytest.raises(ValueError):
            s.percentile(101)

    def test_empty_snapshot(self):
        s = HistogramSnapshot()
        assert s.count == 0 and s.mean == 0.0 and s.percentile(99) == 0.0

    def test_since_returns_only_new_samples(self):
        h = Histogram()
        for _ in range(10):
            h.observe(1.0)
        snap = h.snapshot()
        for _ in range(5):
            h.observe(16.0)
        delta = h.snapshot().since(snap)
        assert delta.count == 5
        assert delta.total == pytest.approx(80.0)
        # All delta samples sit in the 16.0 bucket.
        assert delta.percentile(1) == delta.percentile(99)

    def test_since_none_is_identity(self):
        h = Histogram()
        h.observe(2.0)
        s = h.snapshot()
        assert s.since(None) == s

    def test_reset(self):
        h = Histogram()
        h.observe(3.0)
        h.reset()
        assert h.count == 0 and h.snapshot().count == 0

    def test_exact_snapshot_clamps_to_observed_extrema(self):
        h = Histogram()
        h.observe(65.0)  # bucket [64, 128), midpoint 96
        s = h.snapshot()
        assert s.extrema_exact
        assert s.percentile(99) == 65.0  # clamped to the exact maximum

    def test_delta_snapshot_skips_extrema_clamp(self):
        """Phase deltas carry bucket-edge extrema approximations; the
        percentile must report the honest bucket midpoint, not a value
        clamped to those synthetic edges."""
        h = Histogram()
        for _ in range(10):
            h.observe(1.0)
        snap = h.snapshot()
        h.observe(65.0)  # phase 2: one slow sample
        delta = h.snapshot().since(snap)
        assert not delta.extrema_exact
        assert delta.minimum == 64.0 and delta.maximum == 128.0  # bucket edges
        assert delta.percentile(99) == bucket_mid(bucket_of(65.0))  # == 96.0

    def test_phase_delta_p99_via_metrics(self):
        """Regression: a phase-diffed p99 through Metrics.since must be the
        unclamped bucket representative of the phase's own samples."""
        m = Metrics()
        for _ in range(50):
            m.observe("lat", 0.001)
        snap = m.snapshot()
        for _ in range(20):
            m.observe("lat", 3.0)  # bucket [2, 4), midpoint 3.0
        h = m.since(snap).histogram("lat")
        assert h.count == 20
        assert not h.extrema_exact
        assert h.percentile(99) == bucket_mid(bucket_of(3.0))

    def test_bucket_helpers_bracket_values(self):
        for v in (0.001, 0.5, 1.0, 3.0, 1000.0):
            e = bucket_of(v)
            mid = bucket_mid(e)
            # The bucket [2^(e-1), 2^e) contains v; its midpoint is within 2x.
            assert mid / 2 <= v <= mid * 2


class TestMetricsHistograms:
    def test_observe_creates_histogram(self):
        m = Metrics()
        m.observe("lat", 0.5)
        m.observe("lat", 2.0)
        assert m.histogram("lat").count == 2
        assert m.histogram_names() == ["lat"]
        assert m.histogram("missing").count == 0

    def test_snapshot_includes_histograms(self):
        m = Metrics()
        m.observe("lat", 1.0)
        snap = m.snapshot()
        assert snap.histogram("lat").count == 1
        assert snap.percentile("lat", 50) > 0.0

    def test_since_diffs_histograms_like_counters(self):
        """No stale distribution leaks across phases (phase-diff parity)."""
        m = Metrics()
        m.incr("ops", 3)
        for _ in range(100):
            m.observe("lat", 0.001)  # phase 1: fast ops
        snap = m.snapshot()
        m.incr("ops", 2)
        for _ in range(10):
            m.observe("lat", 1.0)  # phase 2: slow ops
        delta = m.since(snap)
        assert delta.count("ops") == 2
        h = delta.histogram("lat")
        assert h.count == 10
        # Phase-2 percentiles must not be dragged down by phase-1 samples.
        assert h.percentile(50) > 0.5

    def test_since_drops_unchanged_histograms(self):
        m = Metrics()
        m.observe("lat", 1.0)
        snap = m.snapshot()
        m.observe("other", 2.0)
        delta = m.since(snap)
        assert "lat" not in delta.histograms
        assert delta.histogram("other").count == 1

    def test_reset_clears_histograms(self):
        m = Metrics()
        m.observe("lat", 1.0)
        m.reset()
        assert m.histogram("lat").count == 0
        assert m.histogram_names() == []

    def test_as_dict_excludes_histograms(self):
        # Backward compatible: as_dict stays counters + accumulators only.
        m = Metrics()
        m.incr("c")
        m.add("a", 1.5)
        m.observe("lat", 1.0)
        assert m.as_dict() == {"c": 1, "a": 1.5}
