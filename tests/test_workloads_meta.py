"""Metadata workloads: Metarates, PostMark, applications, aging."""

import pytest

from repro.errors import ConfigError
from repro.fs.redbud import RedbudFileSystem
from repro.meta.mds import MetadataServer
from repro.workloads.aging import age_metadata_fs
from repro.workloads.apps import KernelTree, MakeApp, MakeCleanApp, TarApp
from repro.workloads.metarates import MetaratesWorkload
from repro.workloads.postmark import PostMarkConfig, PostMarkWorkload

from tests.conftest import small_config


class TestMetarates:
    @pytest.fixture
    def mds(self) -> MetadataServer:
        return MetadataServer(small_config(layout="embedded"))

    def test_full_cycle(self, mds):
        wl = MetaratesWorkload(nclients=3, files_per_dir=20)
        dirs = wl.setup_dirs(mds)
        assert len(dirs) == 3
        created = wl.run_create(mds, dirs)
        assert created.ops == 60
        assert created.ops_per_s > 0
        utimed = wl.run_utime(mds, dirs)
        assert utimed.ops == 60
        listed = wl.run_readdir_stat(mds, dirs)
        assert listed.ops == 3 * 21  # readdir + 20 stats each
        deleted = wl.run_delete(mds, dirs)
        assert deleted.ops == 60
        for d in dirs:
            assert mds.readdir(d) == []

    def test_clients_interleave_at_the_mds(self, mds):
        # Creation order alternates clients: file i of every client exists
        # before file i+1 of any client.
        wl = MetaratesWorkload(nclients=2, files_per_dir=2)
        dirs = wl.setup_dirs(mds)
        wl.run_create(mds, dirs)
        inodes = [mds.stat(dirs[c], wl._filename(c, i)) for i in (0, 1) for c in (0, 1)]
        ctimes = [i.ctime for i in inodes]
        assert ctimes == sorted(ctimes)

    def test_validation(self):
        with pytest.raises(ConfigError):
            MetaratesWorkload(nclients=0)


class TestPostMark:
    def test_run_accounts_transactions(self):
        fs = RedbudFileSystem(small_config())
        cfg = PostMarkConfig(files=20, transactions=40, nclients=2, seed=1)
        res = PostMarkWorkload(cfg).run(fs)
        assert res.creates >= 20
        assert res.reads + res.appends > 0
        assert res.elapsed_s > 0
        assert res.elapsed_s == pytest.approx(res.mds_s + res.data_s)

    def test_teardown_deletes_everything(self):
        fs = RedbudFileSystem(small_config())
        cfg = PostMarkConfig(files=20, transactions=10, nclients=2, seed=1)
        res = PostMarkWorkload(cfg).run(fs)
        assert res.creates == res.deletes
        for c in range(2):
            assert fs.readdir(f"/pm{c:03d}") == []

    def test_deterministic_per_seed(self):
        r = []
        for _ in range(2):
            fs = RedbudFileSystem(small_config())
            res = PostMarkWorkload(
                PostMarkConfig(files=20, transactions=30, nclients=2, seed=5)
            ).run(fs)
            r.append((res.creates, res.deletes, res.reads, res.appends, res.elapsed_s))
        assert r[0] == r[1]

    def test_validation(self):
        with pytest.raises(ConfigError):
            PostMarkConfig(files=21, nclients=2)
        with pytest.raises(ConfigError):
            PostMarkConfig(min_size=0)


class TestApps:
    @pytest.fixture
    def populated(self):
        fs = RedbudFileSystem(small_config())
        tree = KernelTree(files_per_dir=10, dirs=2, seed=0)
        tree.populate(fs, "/src")
        return fs, tree

    def test_populate_creates_tree(self, populated):
        fs, tree = populated
        assert len(fs.readdir("/src/dir000")) == 10
        assert fs.stat("/src/dir000/src00000.c").name == "src00000.c"

    def test_tar_reads_every_file(self, populated):
        fs, tree = populated
        res = TarApp(tree).run(fs, "/src")
        assert res.ops == tree.nfiles + tree.dirs + 1  # files + readdirs + archive
        assert res.elapsed_s > 0
        assert fs.exists("/src/archive.tar.gz")

    def test_make_creates_objects(self, populated):
        fs, tree = populated
        res = MakeApp(tree).run(fs, "/src")
        assert res.ops == tree.nfiles
        assert fs.exists("/src/dir000/src00000.o")
        # make is CPU-dominated (§V.D.3).
        assert res.cpu_s > res.mds_s + res.data_s

    def test_make_clean_removes_objects(self, populated):
        fs, tree = populated
        MakeApp(tree).run(fs, "/src")
        res = MakeCleanApp(tree).run(fs, "/src")
        assert res.ops == tree.nfiles
        assert not any(n.endswith(".o") for n in fs.readdir("/src/dir000"))


class TestAging:
    def test_synthetic_reaches_target(self):
        mds = MetadataServer(small_config())
        u = age_metadata_fs(mds, 0.6, seed=1)
        assert 0.5 < u < 0.7

    def test_synthetic_fragments_free_space(self):
        mds = MetadataServer(small_config())
        age_metadata_fs(mds, 0.6, mean_free_run=2.0, seed=1)
        # Largest contiguous free run is tiny relative to the free space.
        bitmap = mds.mfs._block_bitmaps[0]
        import numpy as np
        free = ~bitmap._used
        padded = np.concatenate(([False], free, [False]))
        edges = np.flatnonzero(padded[1:] != padded[:-1])
        longest = int(max(edges[1::2] - edges[::2]))
        assert longest < 64

    def test_churn_mode_matches_synthetic_target(self):
        mds = MetadataServer(small_config())
        u = age_metadata_fs(mds, 0.3, mode="churn", seed=1)
        assert u >= 0.3

    def test_zero_target_is_noop(self):
        mds = MetadataServer(small_config())
        before = mds.mfs.data_utilization
        assert age_metadata_fs(mds, 0.0) == before

    def test_aged_fs_still_functions(self):
        mds = MetadataServer(small_config())
        age_metadata_fs(mds, 0.7, seed=1)
        d = mds.mkdir(mds.root, "work")
        for i in range(50):
            mds.create(d, f"f{i}")
        assert len(mds.readdir(d)) == 50

    def test_validation(self):
        mds = MetadataServer(small_config())
        with pytest.raises(ConfigError):
            age_metadata_fs(mds, 1.5)
        with pytest.raises(ConfigError):
            age_metadata_fs(mds, 0.5, mode="magic")
