"""Batched metadata execution path: exact equivalence to the scalar path.

``FSConfig.execution`` selects an execution strategy, not a model: the
plan-level ``read_batch``, the journal group commit and the vectorized
checkpoint must leave the MDS in exactly the state the per-read/per-block
scalar path does — same elapsed time bits, counters, histograms, cache LRU
and readahead order, and disk head.  These tests drive identical workloads
through both strategies and diff the complete observable state.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import CacheParams, DiskParams, SchedulerParams
from repro.disk.cache import BufferCache
from repro.disk.disk import SimulatedDisk
from repro.fs.profiles import (
    lustre_profile,
    redbud_mif_profile,
    redbud_vanilla_profile,
)
from repro.meta.layout import AccessPlan
from repro.meta.mds import MetadataServer

PROFILES = {
    "lustre": lustre_profile,
    "redbud-vanilla": redbud_vanilla_profile,
    "redbud-mif": redbud_mif_profile,
}


def snapshot(mds: MetadataServer) -> dict:
    """Every observable the batched path could disturb, exact bits.

    The only tolerance: the unrendered ``disk.positioning_s`` /
    ``disk.transfer_s`` accumulators, whose vectorized sums carry last-ulp
    pairwise-summation drift against the scalar fold (see
    ``SimulatedDisk._service_vectorized``); they are rounded, everything
    else — including elapsed time and busy time — compares bit for bit.
    """
    mds.cache._flush_moves()
    m = mds.metrics
    hists = {}
    for name in m.histogram_names():
        h = m.histogram(name)
        hists[name] = (h.count, h.percentile(50), h.percentile(90), h.percentile(99))
    metrics = {
        k: round(v, 12) if k in ("disk.positioning_s", "disk.transfer_s") else v
        for k, v in m.as_dict().items()
    }
    return {
        "elapsed": mds.elapsed_s,
        "ops": mds.ops,
        "head": mds.disk.head,
        "busy": mds.disk.busy_s,
        "metrics": metrics,
        "hists": hists,
        "lru": list(mds.cache._lru),
        "ra": list(mds.cache._ra.items()),
        "journal_head": mds.journal.head_block,
        "replay": [(r.seq, r.block, r.dirties) for r in mds.journal.replay()],
    }


def drive(mds: MetadataServer, crash: bool = False) -> None:
    """Deterministic mixed workload touching every op the MDS exposes."""
    root = mds.root
    dirs = [mds.mkdir(root, f"d{i}") for i in range(4)]
    for d in dirs:
        for j in range(40):
            mds.create(d, f"f{j:03d}")
    for d in dirs:
        mds.readdir_stat(d)
        mds.readdir(d)
    for d in dirs:
        for j in range(0, 40, 3):
            mds.utime(d, f"f{j:03d}")
            mds.stat(d, f"f{j:03d}")
    mds.set_extent_records(dirs[0], "f001", 40)
    mds.open_getlayout(dirs[0], "f001")
    mds.rename(dirs[0], "f000", dirs[1], "g000")
    for j in range(0, 40, 5):
        mds.delete(dirs[2], f"f{j:03d}")
    if crash:
        mds.crash_recover()
    mds.drop_caches()
    for d in dirs:
        mds.readdir_stat(d)
    mds.flush()


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_batched_path_matches_scalar(profile):
    make = PROFILES[profile]
    batched = MetadataServer(make())
    scalar = MetadataServer(replace(make(), execution="legacy"))
    drive(batched)
    drive(scalar)
    assert batched.metrics.count("mds.checkpoints") > 0  # both limbs exercised
    assert snapshot(batched) == snapshot(scalar)


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_crash_recovery_matches_scalar(profile):
    make = PROFILES[profile]
    batched = MetadataServer(make())
    scalar = MetadataServer(replace(make(), execution="legacy"))
    drive(batched, crash=True)
    drive(scalar, crash=True)
    assert batched.metrics.count("mds.crash_recoveries") == 1
    assert snapshot(batched) == snapshot(scalar)


def test_vectorized_checkpoint_matches_scalar_checkpoint():
    """The array-submit checkpoint and the per-block loop must produce the
    same request stream, cache population and busy time."""
    cfg = redbud_mif_profile()
    batched = MetadataServer(cfg)
    scalar = MetadataServer(replace(cfg, execution="legacy"))
    for mds in (batched, scalar):
        d = mds.mkdir(mds.root, "dir")
        for j in range(30):  # dirties a scattered set of home blocks
            mds.create(d, f"f{j:02d}")
        mds.checkpoint()
    assert snapshot(batched) == snapshot(scalar)


# ---------------------------------------------------------------------------
# read_batch across a readahead frontier (regression: the fast path must not
# swallow a read that crosses a context's prefetch frontier)
# ---------------------------------------------------------------------------

def make_cache(capacity=64, ra_init=4, ra_max=32):
    disk = SimulatedDisk(DiskParams(capacity_blocks=1 << 14), SchedulerParams())
    cache = BufferCache(
        CacheParams(
            capacity_blocks=capacity,
            readahead_init_blocks=ra_init,
            readahead_max_blocks=ra_max,
        ),
        disk,
    )
    return cache, disk


def cache_state(cache, disk):
    cache._flush_moves()
    return {
        "lru": list(cache._lru),
        "ra": list(cache._ra.items()),
        "counters": dict(disk.metrics.raw_counters()),
        "head": disk.head,
        "busy": disk.busy_s,
    }


class TestReadBatchFrontier:
    def warm(self, cache):
        # Sequential stream: establishes a readahead context whose frontier
        # sits past the last read, with prefetched blocks resident.
        cost = 0.0
        for start in (0, 4, 8):
            cost += cache.read(start, 4)
        return cost

    def test_batch_straddling_frontier_matches_scalar(self):
        c1, d1 = make_cache()
        c2, d2 = make_cache()
        self.warm(c1)
        self.warm(c2)
        frontier = next(iter(c1._ra))
        before = c1.metrics.count("cache.readahead_hits")
        # Resident re-read, a read crossing the frontier (grows the window,
        # prefetches), then another resident read: the middle element must
        # leave the fast path and replay through the scalar read.
        batch = [(0, 2), (frontier - 2, 4), (4, 2)]
        t1 = c1.read_batch(batch)
        t2 = sum(c2.read(s, n) for s, n in batch)
        assert t1 == t2
        assert cache_state(c1, d1) == cache_state(c2, d2)
        assert c1.metrics.count("cache.readahead_hits") == before + 1

    def test_batch_of_misses_matches_scalar(self):
        c1, d1 = make_cache()
        c2, d2 = make_cache()
        batch = [(100, 3), (200, 1), (100, 3), (103, 2)]
        t1 = c1.read_batch(batch)
        t2 = sum(c2.read(s, n) for s, n in batch)
        assert t1 == t2
        assert cache_state(c1, d1) == cache_state(c2, d2)

    def test_deferred_lru_moves_flush_before_eviction(self):
        # Capacity 8: warm hits defer their LRU refreshes; the miss that
        # triggers an eviction must apply them first, or the wrong victim
        # is chosen relative to the scalar path.
        c1, d1 = make_cache(capacity=8, ra_init=2, ra_max=4)
        c2, d2 = make_cache(capacity=8, ra_init=2, ra_max=4)
        ops = [(0, 1), (3, 1), (0, 1), (3, 1), (0, 1), (5, 1), (9, 1), (12, 1)]
        t1 = c1.read_batch(ops)
        t2 = sum(c2.read(s, n) for s, n in ops)
        assert t1 == t2
        assert cache_state(c1, d1) == cache_state(c2, d2)


# ---------------------------------------------------------------------------
# AccessPlan.coalesce
# ---------------------------------------------------------------------------

class TestCoalesce:
    def collapse(self, reads):
        return AccessPlan(reads=list(reads)).coalesce().reads

    def test_noop_returns_self(self):
        plan = AccessPlan(reads=[(10, 2), (20, 1)])
        assert plan.coalesce() is plan

    def test_duplicate_spans_dropped(self):
        assert self.collapse([(5, 2), (9, 1), (5, 2)]) == [(5, 2), (9, 1)]

    def test_contained_span_dropped(self):
        assert self.collapse([(5, 4), (6, 2)]) == [(5, 4)]

    def test_adjacent_spans_merge(self):
        assert self.collapse([(5, 2), (7, 3)]) == [(5, 5)]

    def test_order_is_preserved(self):
        assert self.collapse([(20, 1), (5, 1), (20, 1)]) == [(20, 1), (5, 1)]

    def test_long_single_block_plan_uses_numpy_path(self):
        # A readdirplus-shaped plan: repeated itable blocks, ascending runs.
        reads = [(100 + i // 4, 1) for i in range(80)] + [(50, 1), (100, 1)]
        got = self.collapse(reads)
        assert got == [(100, 20), (50, 1)]

    def test_long_unchanged_plan_returns_self(self):
        plan = AccessPlan(reads=[(i * 3, 1) for i in range(80)])
        assert plan.coalesce() is plan

    def test_dirties_and_costs_survive(self):
        plan = AccessPlan(
            reads=[(5, 2), (7, 1)], dirties=[42], cpu_s=1.5, journal_records=2
        )
        out = plan.coalesce()
        assert out.reads == [(5, 3)]
        assert (out.dirties, out.cpu_s, out.journal_records) == ([42], 1.5, 2)
