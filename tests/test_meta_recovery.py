"""MDS crash recovery: journal replay re-establishes un-checkpointed state."""

import pytest

from repro.fs.verify import check_mds
from repro.meta.mds import MetadataServer

from tests.conftest import small_config


@pytest.fixture(params=["normal", "embedded"])
def mds(request) -> MetadataServer:
    return MetadataServer(small_config(layout=request.param))


class TestMdsCrashRecovery:
    def test_replays_records_since_checkpoint(self, mds):
        interval = mds.config.meta.journal_interval_ops
        d = mds.mkdir(mds.root, "work")
        # Land mid-interval so some records are un-checkpointed.
        n = interval + interval // 2
        for i in range(n):
            mds.create(d, f"f{i}")
        replayed = mds.crash_recover()
        assert replayed > 0
        assert replayed < n + 2  # only the tail since the last checkpoint

    def test_recovery_checkpoints_everything(self, mds):
        d = mds.mkdir(mds.root, "work")
        for i in range(5):
            mds.create(d, f"f{i}")
        mds.crash_recover()
        assert mds._dirty == set()
        assert mds._redo == []
        assert mds.metrics.count("mds.crash_recoveries") == 1

    def test_namespace_survives(self, mds):
        d = mds.mkdir(mds.root, "work")
        for i in range(20):
            mds.create(d, f"f{i}")
        mds.delete(d, "f3")
        mds.crash_recover()
        names = set(mds.readdir(d))
        assert names == {f"f{i}" for i in range(20) if i != 3}
        check_mds(mds).raise_if_dirty()

    def test_recovery_after_clean_checkpoint_replays_nothing(self, mds):
        d = mds.mkdir(mds.root, "work")
        for i in range(5):
            mds.create(d, f"f{i}")
        mds.flush()
        assert mds.crash_recover() == 0

    def test_reads_do_not_enter_redo_log(self, mds):
        d = mds.mkdir(mds.root, "work")
        mds.create(d, "f")
        mds.flush()
        mds.stat(d, "f")
        mds.readdir_stat(d)
        assert mds._redo == []

    def test_service_continues_after_recovery(self, mds):
        d = mds.mkdir(mds.root, "work")
        mds.create(d, "before")
        mds.crash_recover()
        mds.create(d, "after")
        mds.utime(d, "after")
        assert set(mds.readdir(d)) == {"before", "after"}
