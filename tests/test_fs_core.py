"""File-system core: stream ids, striping arithmetic, profiles, config."""

import pytest

from repro.config import (
    AllocPolicyParams,
    CacheParams,
    DiskParams,
    FSConfig,
    MetaParams,
    SchedulerParams,
)
from repro.errors import ConfigError
from repro.fs.file import RedbudFile
from repro.fs.profiles import (
    lustre_profile,
    redbud_mif_profile,
    redbud_vanilla_profile,
    with_alloc_policy,
)
from repro.fs.stream import make_stream_id, split_stream_id


class TestStreamId:
    def test_roundtrip(self):
        for client, pid in [(0, 0), (3, 41), (1000, 99999)]:
            assert split_stream_id(make_stream_id(client, pid)) == (client, pid)

    def test_distinct(self):
        assert make_stream_id(1, 2) != make_stream_id(2, 1)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            make_stream_id(-1, 0)

    def test_pid_overflow_rejected(self):
        with pytest.raises(ConfigError):
            make_stream_id(0, 1 << 21)


class TestStriping:
    @pytest.fixture
    def f(self) -> RedbudFile:
        return RedbudFile(
            file_id=1, name="/f", layout=[0, 2, 4], stripe_blocks=8
        )

    def test_slot_rotation(self, f):
        assert [f.slot_of(b) for b in (0, 7, 8, 16, 24)] == [0, 0, 1, 2, 0]

    def test_dlocal_is_dense_per_slot(self, f):
        # Slot 0 owns stripes 0, 3, 6, ...: their dlocal ranges are packed.
        assert f.to_dlocal(0) == (0, 0)
        assert f.to_dlocal(24) == (0, 8)
        assert f.to_dlocal(48) == (0, 16)
        assert f.to_dlocal(8) == (1, 0)

    def test_roundtrip(self, f):
        for logical in range(0, 100):
            slot, dlocal = f.to_dlocal(logical)
            assert f.to_logical(slot, dlocal) == logical

    def test_segments_split_on_stripe_boundaries(self, f):
        segs = f.segments(6, 12)  # crosses the 8-block stripe boundary twice
        assert segs == [(0, 6, 2), (1, 0, 8), (2, 0, 2)]
        assert sum(c for _, _, c in segs) == 12

    def test_segments_within_one_stripe(self, f):
        assert f.segments(9, 3) == [(1, 1, 3)]

    def test_invalid_args(self, f):
        with pytest.raises(ConfigError):
            f.slot_of(-1)
        with pytest.raises(ConfigError):
            f.segments(0, 0)
        with pytest.raises(ConfigError):
            f.to_logical(5, 0)

    def test_requires_layout(self):
        with pytest.raises(ConfigError):
            RedbudFile(file_id=1, name="/f", layout=[], stripe_blocks=8)


class TestProfiles:
    def test_paper_systems(self):
        orig = redbud_vanilla_profile()
        lustre = lustre_profile()
        mif = redbud_mif_profile()
        # Both baselines use traditional placement.
        assert orig.alloc.policy == "reservation"
        assert lustre.alloc.policy == "reservation"
        assert orig.meta.layout == "normal"
        assert lustre.meta.layout == "normal"
        # Lustre's MDS is ext4: Htree lookups.
        assert not orig.meta.htree_index
        assert lustre.meta.htree_index
        # MiF enables both techniques.
        assert mif.alloc.policy == "ondemand"
        assert mif.meta.layout == "embedded"

    def test_with_alloc_policy(self):
        cfg = with_alloc_policy(redbud_vanilla_profile(), "static")
        assert cfg.alloc.policy == "static"
        assert "static" in cfg.name

    def test_ndisks_override(self):
        assert redbud_mif_profile(ndisks=8).ndisks == 8


class TestConfigValidation:
    def test_defaults_valid(self):
        FSConfig()

    def test_block_size_multiple_of_512(self):
        with pytest.raises(ConfigError):
            DiskParams(block_size=1000)

    def test_seek_ordering(self):
        with pytest.raises(ConfigError):
            DiskParams(min_seek_s=0.01, max_seek_s=0.001)

    def test_scheduler_kind(self):
        with pytest.raises(ConfigError):
            SchedulerParams(kind="anticipatory")

    def test_readahead_bounds(self):
        with pytest.raises(ConfigError):
            CacheParams(readahead_init_blocks=64, readahead_max_blocks=4)

    def test_policy_name(self):
        with pytest.raises(ConfigError):
            AllocPolicyParams(policy="bogus")

    def test_window_scale_minimum(self):
        with pytest.raises(ConfigError):
            AllocPolicyParams(window_scale=1)

    def test_layout_name(self):
        with pytest.raises(ConfigError):
            MetaParams(layout="flat")

    def test_inode_tail_capacity(self):
        m = MetaParams(inode_size=256, inode_header_size=128, extent_record_size=16)
        assert m.inode_tail_extents == 8

    def test_with_policy_helper(self):
        cfg = FSConfig().with_policy("vanilla")
        assert cfg.alloc.policy == "vanilla"

    def test_with_layout_helper(self):
        cfg = FSConfig().with_layout("normal")
        assert cfg.meta.layout == "normal"
