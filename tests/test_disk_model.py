"""Disk service-time model and request validation."""

import pytest

from repro.config import DiskParams
from repro.disk.model import BlockRequest, ServiceTimeModel
from repro.errors import SimulationError


@pytest.fixture
def model() -> ServiceTimeModel:
    return ServiceTimeModel(DiskParams(capacity_blocks=1 << 20))


class TestBlockRequest:
    def test_end(self):
        assert BlockRequest(10, 5).end == 15

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            BlockRequest(-1, 1)

    def test_zero_length_rejected(self):
        with pytest.raises(SimulationError):
            BlockRequest(0, 0)


class TestPositioningTime:
    def test_sequential_is_free(self, model):
        assert model.positioning_time(100, 100) == 0.0

    def test_near_gap_charged_settle_only(self, model):
        p = model.params
        t = model.positioning_time(100, 100 + p.near_gap_blocks)
        assert t == p.min_seek_s

    def test_beyond_near_gap_adds_rotation(self, model):
        p = model.params
        t = model.positioning_time(100, 100 + p.near_gap_blocks + 1)
        assert t > p.min_seek_s + p.rotational_s * 0.99

    def test_monotonic_in_distance(self, model):
        d1 = model.positioning_time(0, 1000)
        d2 = model.positioning_time(0, 100000)
        d3 = model.positioning_time(0, 1000000)
        assert d1 < d2 < d3

    def test_symmetric(self, model):
        assert model.positioning_time(0, 5000) == model.positioning_time(5000, 0)

    def test_full_stroke_bounded(self, model):
        p = model.params
        t = model.positioning_time(0, p.capacity_blocks - 1)
        assert t <= p.max_seek_s + p.rotational_s + 1e-12


class TestTransferTime:
    def test_linear_in_blocks(self, model):
        assert model.transfer_time(10) == pytest.approx(10 * model.transfer_time(1))

    def test_matches_bandwidth(self, model):
        p = model.params
        # One second of transfer moves seq_bandwidth bytes.
        blocks_per_s = p.seq_bandwidth / p.block_size
        assert model.transfer_time(int(blocks_per_s)) == pytest.approx(1.0, rel=1e-3)

    def test_negative_rejected(self, model):
        with pytest.raises(SimulationError):
            model.transfer_time(-1)


class TestServiceTime:
    def test_sequential_request_is_transfer_only(self, model):
        req = BlockRequest(100, 8)
        assert model.service_time(100, req) == pytest.approx(model.transfer_time(8))

    def test_includes_positioning(self, model):
        req = BlockRequest(100000, 8)
        expected = model.positioning_time(0, 100000) + model.transfer_time(8)
        assert model.service_time(0, req) == pytest.approx(expected)
