"""fig_cache runner and cache telemetry: acceptance-level checks.

Pins the ISSUE acceptance criteria: the adaptive profile beats the legacy
LRU on the cache-pressure sweep (>=1.3x simulated time or >=20-point
hit-rate gain per scenario), and the per-tier hit/miss plus
prefetch-accuracy series are visible in service-mode telemetry.
"""

from repro.bench.baseline import PINNED_RUNNERS
from repro.core.run import run


def test_fig_cache_adaptive_beats_legacy():
    result = run("fig_cache", scale=0.05, seed=0)
    payload = result.payload
    for scenario in ("pressure", "streams"):
        assert (
            payload.speedup(scenario) >= 1.3
            or payload.hit_rate_gain(scenario) >= 20.0
        ), scenario
    # The pressure scenario clears BOTH thresholds at the pinned scale.
    assert payload.speedup("pressure") >= 1.3
    assert payload.hit_rate_gain("pressure") >= 20.0


def test_fig_cache_counters_are_coherent():
    result = run("fig_cache", scale=0.05, seed=0)
    adaptive = result.payload.get("pressure", "adaptive")
    legacy = result.payload.get("pressure", "legacy")
    assert adaptive.ops == legacy.ops  # same workload either way
    assert adaptive.disk_requests < legacy.disk_requests
    assert 0 < adaptive.prefetch_used <= adaptive.prefetch_issued
    assert adaptive.t1_hits + adaptive.t2_hits <= adaptive.hits
    assert legacy.t1_hits == legacy.t2_hits == 0  # tiers are adaptive-only


def test_fig_cache_is_deterministic_across_jobs():
    a = run("fig_cache", scale=0.05, seed=0, jobs=1)
    b = run("fig_cache", scale=0.05, seed=0, jobs=4)
    assert a.fingerprint == b.fingerprint
    assert [vars(r) for r in a.payload.runs] == [vars(r) for r in b.payload.runs]
    assert a.metrics.counters == b.metrics.counters


def test_fig_cache_is_pinned():
    assert "fig_cache" in PINNED_RUNNERS


def test_service_telemetry_carries_cache_series():
    result = run(
        "service", scale=0.05, seed=0, streams=300,
        telemetry=True, cache_profile="adaptive",
    )
    snap = result.payload.cells[0].telemetry
    names = set()
    for frame in snap.frames:
        names.update(frame.counters)
        names.update(frame.sums)
    assert "cache.hits" in names
    assert any(n in names for n in ("cache.t1_hits", "cache.t2_hits"))
    assert "cache.hit_rate" in names


def test_service_cache_profile_default_keeps_fingerprint():
    default = run("service", scale=0.05, seed=0, streams=100)
    explicit = run(
        "service", scale=0.05, seed=0, streams=100, cache_profile="legacy"
    )
    adaptive = run(
        "service", scale=0.05, seed=0, streams=100, cache_profile="adaptive"
    )
    assert default.fingerprint == explicit.fingerprint
    assert adaptive.fingerprint != default.fingerprint
