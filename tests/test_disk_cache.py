"""Buffer cache: hit/miss accounting, LRU eviction, readahead growth."""

import pytest

from repro.config import CacheParams, DiskParams, SchedulerParams
from repro.disk.cache import BufferCache
from repro.disk.disk import SimulatedDisk
from repro.disk.model import BlockRequest
from repro.errors import SimulationError


def make_cache(capacity=64, ra_init=4, ra_max=32, enabled=True):
    disk = SimulatedDisk(DiskParams(capacity_blocks=1 << 16), SchedulerParams())
    cache = BufferCache(
        CacheParams(
            capacity_blocks=capacity,
            readahead_init_blocks=ra_init,
            readahead_max_blocks=ra_max,
            enabled=enabled,
        ),
        disk,
    )
    return cache, disk


class TestCaching:
    def test_first_read_misses(self):
        cache, _ = make_cache()
        cache.read(10, 1)
        assert cache.metrics.count("cache.misses") == 1

    def test_repeat_read_hits(self):
        cache, disk = make_cache()
        cache.read(10, 1)
        before = disk.metrics.count("disk.requests")
        t = cache.read(10, 1)
        assert t == 0.0
        assert disk.metrics.count("disk.requests") == before
        assert cache.metrics.count("cache.hits") >= 1

    def test_write_populates_cache(self):
        cache, disk = make_cache()
        cache.write(5, 2)
        before = disk.metrics.count("disk.requests")
        cache.read(5, 2)
        assert disk.metrics.count("disk.requests") == before

    def test_sync_write_goes_to_disk(self):
        cache, disk = make_cache()
        cache.write(5, 2, sync=True)
        assert disk.metrics.count("disk.write_requests") == 1

    def test_async_write_stays_in_cache(self):
        cache, disk = make_cache()
        cache.write(5, 2, sync=False)
        assert disk.metrics.count("disk.write_requests") == 0
        assert cache.metrics.count("cache.delayed_writes") == 1

    def test_lru_eviction(self):
        cache, _ = make_cache(capacity=4)
        cache.read(0, 1)
        for b in range(100, 104):
            cache.read(b, 1)
        assert 0 not in cache
        assert cache.metrics.count("cache.evictions") >= 1

    def test_invalidate(self):
        cache, _ = make_cache()
        cache.read(10, 2)
        cache.invalidate(10, 2)
        assert 10 not in cache
        assert 11 not in cache

    def test_drop(self):
        cache, _ = make_cache()
        cache.read(10, 2)
        cache.drop()
        assert len(cache) == 0

    def test_disabled_cache_always_reads_disk(self):
        cache, disk = make_cache(enabled=False)
        cache.read(10, 1)
        cache.read(10, 1)
        assert disk.metrics.count("disk.requests") == 2

    def test_zero_blocks_rejected(self):
        cache, _ = make_cache()
        with pytest.raises(SimulationError):
            cache.read(0, 0)
        with pytest.raises(SimulationError):
            cache.write(0, 0)


class TestReadahead:
    def test_sequential_single_block_reads_trigger_prefetch(self):
        cache, disk = make_cache(capacity=256, ra_init=4, ra_max=32)
        # A long run of sequential 1-block reads should need far fewer disk
        # requests than blocks read.
        for b in range(64):
            cache.read(b, 1)
        assert disk.metrics.count("disk.requests") < 20
        assert cache.metrics.count("cache.readahead_hits") >= 1

    def test_window_growth_reduces_requests_for_longer_runs(self):
        cache1, disk1 = make_cache(capacity=4096, ra_max=32)
        for b in range(32):
            cache1.read(b, 1)
        short_reqs = disk1.metrics.count("disk.requests")
        cache2, disk2 = make_cache(capacity=4096, ra_max=32)
        for b in range(256):
            cache2.read(b, 1)
        long_reqs = disk2.metrics.count("disk.requests")
        # 8x the blocks must not cost 8x the requests (window doubled).
        assert long_reqs < 8 * short_reqs

    def test_interleaved_streams_each_get_a_context(self):
        cache, disk = make_cache(capacity=4096)
        # Two interleaved sequential streams (dentry blocks at 0+, itable
        # blocks at 1000+) like a readdirplus.
        for i in range(32):
            cache.read(i, 1)
            cache.read(1000 + i, 1)
        # With per-stream contexts both streams prefetch: far fewer than 64.
        assert disk.metrics.count("disk.requests") < 32

    def test_random_reads_do_not_prefetch(self):
        cache, disk = make_cache(capacity=4096)
        for b in (5000, 100, 9000, 42, 7777):
            cache.read(b, 1)
        assert disk.metrics.count("disk.blocks") == 5


class TestBillingOnCachedReads:
    """Fully cache-resident reads must cost zero simulated time even when
    they cross a stale readahead frontier: the synchronous prefetch the
    frontier triggers is still issued, but its disk time belongs to the
    background, not to the read that never touched the disk."""

    def test_hypothesis_pinned_example(self):
        # Minimal falsifying example found by test_cache_read_your_reads:
        # (485, 2) crosses the frontier left at 485 by the first read's
        # prefetch, then (482, 3) re-reads resident blocks across it.
        cache, _ = make_cache(capacity=65536, ra_init=4, ra_max=32)
        for start, n in [(478, 2), (485, 2), (425, 1), (482, 3)]:
            cache.read(start, n)
            for b in range(start, start + n):
                assert b in cache
            assert cache.read(start, n) == 0.0

    def test_prefetch_still_issued_but_unbilled(self):
        cache, disk = make_cache(capacity=65536, ra_init=4, ra_max=32)
        cache.read(478, 2)  # leaves a frontier past 480
        frontier = next(iter(cache._ra))
        for b in range(480, frontier + 1):
            cache.write(b, 1)  # make the frontier read fully resident
        before = disk.metrics.count("disk.read_requests")
        elapsed = cache.read(frontier - 1, 2)  # crosses the frontier
        assert elapsed == 0.0  # resident read: free...
        assert disk.metrics.count("disk.read_requests") > before  # ...but prefetched
        assert cache.metrics.count("cache.prefetch_only_reads") == 1
        assert cache.metrics.total("cache.unbilled_prefetch_s") > 0.0

    def test_partial_miss_still_billed(self):
        cache, _ = make_cache()
        cache.write(100, 1)  # resident, but no readahead frontier
        assert cache.read(100, 2) > 0.0  # block 101 is a real miss


class TestInvalidateReadahead:
    def test_invalidate_drops_context_into_region(self):
        cache, _ = make_cache(ra_init=4, ra_max=32)
        cache.read(10, 2)  # prefetches and leaves a frontier near 16
        assert cache._ra
        frontier = next(iter(cache._ra))
        cache.invalidate(frontier - 1, 4)
        assert frontier not in cache._ra
        assert cache.metrics.count("cache.ra_invalidated") >= 1

    def test_invalidate_far_region_keeps_context(self):
        cache, _ = make_cache(ra_init=4, ra_max=32)
        cache.read(10, 2)
        assert cache._ra
        cache.invalidate(5000, 4)
        assert cache._ra  # unrelated context survives

    def test_invalidated_frontier_does_not_leak_billing(self):
        # After invalidation, re-reading near the old frontier re-misses and
        # is billed (the context is gone, so no frontier crossing applies).
        cache, disk = make_cache(ra_init=4, ra_max=32)
        cache.read(10, 2)
        frontier = next(iter(cache._ra))
        cache.invalidate(10, frontier + 8 - 10)
        assert cache.read(frontier, 1) > 0.0
        assert disk.metrics.count("disk.read_requests") >= 2

    def test_invalidate_below_frontier_keeps_context(self):
        # Invalidating a region wholly *below* the frontier must not drop
        # the context: the prediction target still exists.  (Regression:
        # the stale rule used to drop any context within readahead slack
        # of the region, not just frontiers inside it.)
        cache, _ = make_cache(capacity=65536, ra_init=4, ra_max=32)
        cache.read(478, 2)
        frontier = next(iter(cache._ra))
        cache.invalidate(470, frontier - 470 - 1)  # stops short of frontier
        assert frontier in cache._ra

    def test_surviving_context_keeps_warm_read_billing(self):
        # The surviving context preserves the prefetch-without-billing
        # behaviour: a fully-resident read crossing its frontier is free
        # but still issues the prefetch to disk.
        cache, disk = make_cache(capacity=65536, ra_init=4, ra_max=32)
        cache.read(478, 2)
        frontier = next(iter(cache._ra))
        cache.invalidate(470, 8)  # [470, 478): below the data and frontier
        assert frontier in cache._ra
        for b in range(480, frontier + 1):
            cache.write(b, 1)  # make the frontier read fully resident
        before = disk.metrics.count("disk.read_requests")
        assert cache.read(frontier - 1, 2) == 0.0  # warm read stays free
        assert disk.metrics.count("disk.read_requests") > before
        assert cache.metrics.count("cache.prefetch_only_reads") == 1
