"""Data plane: write/read mapping, striping, delete, fsync, accounting."""

import pytest

from repro.errors import ReproError
from repro.fs.dataplane import DataPlane
from repro.units import KiB, MiB

from tests.conftest import small_config


def make_plane(policy="ondemand", **kw) -> DataPlane:
    return DataPlane(small_config(policy=policy, **kw))


class TestCreateDelete:
    def test_layout_rotates_over_disks(self):
        plane = make_plane()
        f = plane.create_file("/a")
        assert len(f.layout) == plane.config.ndisks
        disks = {plane.fsm.groups[g].disk_index for g in f.layout}
        assert len(disks) == plane.config.ndisks

    def test_narrow_stripe(self):
        plane = make_plane()
        f = plane.create_file("/a", width=1)
        assert f.width == 1

    def test_delete_frees_every_block(self):
        plane = make_plane()
        free0 = plane.fsm.free_blocks
        f = plane.create_file("/a")
        plane.write(f, 1, 0, 1 * MiB)
        plane.close_file(f)
        plane.delete_file(f)
        assert plane.fsm.free_blocks == free0
        assert f.deleted

    def test_operations_on_deleted_file_rejected(self):
        plane = make_plane()
        f = plane.create_file("/a")
        plane.delete_file(f)
        with pytest.raises(ReproError):
            plane.write(f, 1, 0, 4096)
        with pytest.raises(ReproError):
            plane.read(f, 0, 4096)


class TestWriteRead:
    def test_write_maps_all_blocks(self):
        plane = make_plane()
        f = plane.create_file("/a")
        plane.write(f, 1, 0, 100 * KiB)
        assert f.written_blocks == 25
        assert f.size_bytes == 100 * KiB

    def test_write_returns_requests_covering_data(self):
        plane = make_plane()
        f = plane.create_file("/a")
        reqs = plane.write(f, 1, 0, 64 * KiB)
        assert sum(r.nblocks for r in reqs) == 16
        assert all(r.is_write for r in reqs)

    def test_read_back_touches_same_physical_blocks(self):
        plane = make_plane()
        f = plane.create_file("/a")
        wreqs = plane.write(f, 1, 0, 64 * KiB)
        rreqs = plane.read(f, 0, 64 * KiB)
        wset = {(r.start, r.nblocks) for r in wreqs}
        rblocks = {
            b for r in rreqs for b in range(r.start, r.start + r.nblocks)
        }
        wblocks = {
            b for s, n in wset for b in range(s, s + n)
        }
        assert rblocks == wblocks

    def test_read_of_hole_costs_nothing(self):
        plane = make_plane()
        f = plane.create_file("/a")
        assert plane.read(f, 0, 4096) == []

    def test_overwrite_does_not_reallocate(self):
        plane = make_plane()
        f = plane.create_file("/a")
        plane.write(f, 1, 0, 64 * KiB)
        used = plane.fsm.used_blocks
        plane.write(f, 1, 0, 64 * KiB)
        assert plane.fsm.used_blocks == used

    def test_sparse_write_leaves_hole(self):
        plane = make_plane()
        f = plane.create_file("/a")
        plane.write(f, 1, 1 * MiB, 4096)
        assert f.written_blocks == 1
        assert plane.read(f, 0, 4096) == []

    def test_unaligned_write_rounds_to_blocks(self):
        plane = make_plane()
        f = plane.create_file("/a")
        plane.write(f, 1, 100, 5000)  # straddles blocks 0 and 1
        assert f.written_blocks == 2

    def test_zero_length_rejected(self):
        plane = make_plane()
        f = plane.create_file("/a")
        with pytest.raises(ReproError):
            plane.write(f, 1, 0, 0)
        with pytest.raises(ReproError):
            plane.read(f, 0, 0)

    def test_write_spanning_stripes_hits_multiple_disks(self):
        plane = make_plane()  # stripe 64 blocks = 256 KiB
        f = plane.create_file("/a")
        reqs = plane.write(f, 1, 0, 1 * MiB)
        disks = {plane.array.locate(r.start)[0] for r in reqs}
        assert len(disks) > 1


class TestStaticPolicyIntegration:
    def test_expected_bytes_fallocates(self):
        plane = make_plane(policy="static")
        f = plane.create_file("/a", expected_bytes=1 * MiB)
        assert f.mapped_blocks == 256
        assert f.written_blocks == 0

    def test_write_into_fallocated_space_allocates_nothing(self):
        plane = make_plane(policy="static")
        f = plane.create_file("/a", expected_bytes=1 * MiB)
        used = plane.fsm.used_blocks
        plane.write(f, 1, 0, 512 * KiB)
        assert plane.fsm.used_blocks == used
        assert f.written_blocks == 128

    def test_fallocated_layout_is_contiguous_per_slot(self):
        plane = make_plane(policy="static")
        f = plane.create_file("/a", expected_bytes=1 * MiB)
        assert f.extent_count == f.width


class TestDelayedPolicyIntegration:
    def test_write_buffers_then_fsync_materializes(self):
        plane = make_plane(policy="delayed")
        f = plane.create_file("/a")
        reqs = plane.write(f, 1, 0, 64 * KiB)
        assert reqs == []  # buffered
        assert f.written_blocks == 0
        flushed = plane.fsync(f)
        assert sum(r.nblocks for r in flushed) == 16
        assert f.written_blocks == 16

    def test_coalesced_flush_is_contiguous(self):
        plane = make_plane(policy="delayed")
        f = plane.create_file("/a", width=1)
        for i in range(8):
            plane.write(f, 1, i * 16 * KiB, 16 * KiB)
        flushed = plane.fsync(f)
        assert len(flushed) == 1  # eight writes, one extent


class TestAccounting:
    def test_total_extents_sums_live_files(self):
        plane = make_plane()
        a = plane.create_file("/a")
        b = plane.create_file("/b")
        plane.write(a, 1, 0, 64 * KiB)
        plane.write(b, 1, 0, 64 * KiB)
        assert plane.total_extents() == a.extent_count + b.extent_count

    def test_utilization_rises_with_data(self):
        plane = make_plane()
        f = plane.create_file("/a")
        u0 = plane.utilization
        plane.write(f, 1, 0, 4 * MiB)
        assert plane.utilization > u0

    def test_metrics_flow(self):
        plane = make_plane()
        f = plane.create_file("/a")
        plane.write(f, 1, 0, 64 * KiB)
        plane.read(f, 0, 64 * KiB)
        assert plane.metrics.count("fs.writes") == 1
        assert plane.metrics.count("fs.reads") == 1
        assert plane.metrics.count("fs.bytes_written") == 64 * KiB
