"""Metadata server: plan execution, journaling, checkpoints, timing."""

import pytest

from repro.errors import FileExists, FileNotFound
from repro.meta.mds import MetadataServer

from tests.conftest import small_config


@pytest.fixture(params=["normal", "embedded"])
def mds(request) -> MetadataServer:
    return MetadataServer(small_config(layout=request.param))


class TestOperations:
    def test_namespace_roundtrip(self, mds):
        d = mds.mkdir(mds.root, "work")
        mds.create(d, "a")
        mds.create(d, "b")
        assert set(mds.readdir(d)) == {"a", "b"}
        mds.utime(d, "a")
        inode = mds.stat(d, "a")
        assert inode.mtime > 0.0
        mds.delete(d, "a")
        assert mds.readdir(d) == ["b"]

    def test_duplicate_create_raises(self, mds):
        mds.create(mds.root, "f")
        with pytest.raises(FileExists):
            mds.create(mds.root, "f")

    def test_missing_raises(self, mds):
        with pytest.raises(FileNotFound):
            mds.stat(mds.root, "nope")

    def test_readdir_stat_aggregation_saves_overhead(self, mds):
        d = mds.mkdir(mds.root, "work")
        for i in range(50):
            mds.create(d, f"f{i}")
        mds.flush()
        mds.drop_caches()
        t0 = mds.elapsed_s
        mds.readdir_stat(d)
        aggregated = mds.elapsed_s - t0

        mds.drop_caches()
        t0 = mds.elapsed_s
        mds.readdir_then_stats(d)
        separate = mds.elapsed_s - t0
        # One request vs 51 requests of protocol overhead.
        assert aggregated < separate

    def test_open_getlayout(self, mds):
        mds.create(mds.root, "f")
        mds.set_extent_records(mds.root, "f", 5)
        inode = mds.open_getlayout(mds.root, "f")
        assert inode.extent_records == 5

    def test_rename(self, mds):
        d1 = mds.mkdir(mds.root, "d1")
        d2 = mds.mkdir(mds.root, "d2")
        mds.create(d1, "f")
        mds.rename(d1, "f", d2, "g")
        assert mds.readdir(d1) == []
        assert mds.readdir(d2) == ["g"]


class TestJournalAndCheckpoint:
    def test_mutations_journal(self, mds):
        mds.create(mds.root, "f")
        assert mds.metrics.count("mds.journal_writes") >= 1

    def test_reads_do_not_journal(self, mds):
        mds.create(mds.root, "f")
        before = mds.metrics.count("mds.journal_writes")
        mds.stat(mds.root, "f")
        mds.readdir(mds.root)
        assert mds.metrics.count("mds.journal_writes") == before

    def test_checkpoint_fires_on_interval(self, mds):
        interval = mds.config.meta.journal_interval_ops
        for i in range(interval):
            mds.create(mds.root, f"f{i}")
        assert mds.metrics.count("mds.checkpoints") >= 1

    def test_flush_empties_dirty_set(self, mds):
        mds.create(mds.root, "f")
        mds.flush()
        assert mds._dirty == set()
        assert mds.checkpoint() == 0

    def test_elapsed_monotonic(self, mds):
        t0 = mds.elapsed_s
        mds.create(mds.root, "f")
        t1 = mds.elapsed_s
        assert t1 > t0
        mds.stat(mds.root, "f")
        assert mds.elapsed_s >= t1

    def test_reset_timeline_flushes_and_zeros(self, mds):
        mds.create(mds.root, "f")
        mds.reset_timeline()
        assert mds.elapsed_s == 0.0
        # State survives the timeline reset.
        assert mds.stat(mds.root, "f").name == "f"


class TestLayoutComparison:
    """Cross-layout invariants the paper's Fig. 8 relies on."""

    def test_embedded_checkpoints_fewer_blocks_on_create(self):
        counts = {}
        for layout in ("normal", "embedded"):
            mds = MetadataServer(small_config(layout=layout))
            d = mds.mkdir(mds.root, "work")
            for i in range(64):
                mds.create(d, f"f{i}")
            mds.flush()
            counts[layout] = mds.metrics.count("mds.checkpoint_blocks")
        assert counts["embedded"] < counts["normal"]

    def test_embedded_reads_fewer_blocks_on_readdir_stat(self):
        counts = {}
        for layout in ("normal", "embedded"):
            mds = MetadataServer(small_config(layout=layout))
            d = mds.mkdir(mds.root, "work")
            for i in range(128):
                mds.create(d, f"f{i}")
            mds.flush()
            mds.drop_caches()
            snap = mds.metrics.snapshot()
            mds.readdir_stat(d)
            counts[layout] = mds.metrics.since(snap).count("disk.requests")
        assert counts["embedded"] < counts["normal"]
