"""Time-series telemetry: windowing, snapshots, exact histogram merges."""

from __future__ import annotations

import pickle

import pytest

from repro.obs.histogram import Histogram
from repro.obs.timeseries import FrameSnapshot, TimeSeries, TimeSeriesSnapshot


class TestWindowing:
    def test_signals_land_in_their_windows(self):
        ts = TimeSeries(window_s=1.0)
        ts.incr(0.2, "arrivals")
        ts.incr(0.9, "arrivals")
        ts.incr(2.5, "arrivals")
        ts.add(0.5, "bytes", 100.0)
        ts.observe(2.1, "latency_s", 0.25)
        snap = ts.snapshot()
        assert len(snap) == 3  # windows 0, 1 (gap), 2
        assert snap.counter_values("arrivals") == [2, 0, 1]
        assert snap.sum_values("bytes") == [100.0, 0.0, 0.0]
        assert snap.frames[2].percentile("latency_s", 50.0) > 0.0

    def test_window_boundary_goes_to_upper_window(self):
        ts = TimeSeries(window_s=0.5)
        ts.incr(0.5, "x")  # exactly on the boundary -> window 1
        snap = ts.snapshot()
        assert snap.counter_values("x") == [0, 1]

    def test_gap_windows_materialize_empty(self):
        ts = TimeSeries(window_s=1.0)
        ts.incr(4.5, "x")
        snap = ts.snapshot()
        assert len(snap) == 5
        assert all(f.empty for f in snap.frames[:4])
        assert not snap.frames[4].empty
        assert snap.frames[3].start_s == 3.0

    def test_empty_series_snapshots_empty(self):
        snap = TimeSeries(window_s=1.0).snapshot()
        assert len(snap) == 0
        assert snap.duration_s == 0.0
        assert snap.counter_names() == []
        assert snap.hist_names() == []

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            TimeSeries(window_s=0.0)
        with pytest.raises(ValueError, match="window"):
            TimeSeries(window_s=-1.0)

    def test_negative_timestamp_rejected(self):
        ts = TimeSeries(window_s=1.0)
        with pytest.raises(ValueError, match="non-negative"):
            ts.incr(-0.1, "x")

    def test_len_counts_touched_windows_only(self):
        ts = TimeSeries(window_s=1.0)
        ts.incr(0.0, "x")
        ts.incr(9.0, "x")
        assert len(ts) == 2  # gaps only materialize at snapshot time


class TestSnapshot:
    def _sample(self):
        ts = TimeSeries(window_s=0.5)
        for i, v in enumerate([0.001, 0.004, 0.002, 0.032]):
            ts.observe(i * 0.5, "lat", v)
            ts.incr(i * 0.5, "n")
        ts.add(0.0, "bytes", 64.0)
        return ts.snapshot()

    def test_names_are_sorted_unions(self):
        ts = TimeSeries(window_s=1.0)
        ts.incr(0.0, "b")
        ts.incr(1.5, "a")
        ts.observe(0.0, "z.lat", 1.0)
        ts.observe(1.5, "a.lat", 1.0)
        snap = ts.snapshot()
        assert snap.counter_names() == ["a", "b"]
        assert snap.hist_names() == ["a.lat", "z.lat"]

    def test_duration_covers_frame_grid(self):
        snap = self._sample()
        assert snap.duration_s == pytest.approx(4 * 0.5)

    def test_percentile_values_zero_on_empty_windows(self):
        ts = TimeSeries(window_s=1.0)
        ts.observe(2.5, "lat", 0.125)
        vals = ts.snapshot().percentile_values("lat", 99.0)
        assert vals[0] == 0.0 and vals[1] == 0.0 and vals[2] > 0.0

    def test_merged_equals_single_histogram(self):
        """Merging per-window sketches reproduces one histogram that saw
        every sample — the property SLO compliance windows rely on."""
        samples = [0.001, 0.002, 0.004, 0.031, 0.0005, 0.26]
        ts = TimeSeries(window_s=0.25)
        whole = Histogram()
        for i, v in enumerate(samples):
            ts.observe(i * 0.3, "lat", v)
            whole.observe(v)
        merged = ts.snapshot().merged("lat")
        ref = whole.snapshot()
        assert merged.count == ref.count
        assert merged.buckets == ref.buckets
        for p in (50.0, 99.0, 99.9):
            assert merged.percentile(p) == ref.percentile(p)

    def test_merged_respects_span_bounds(self):
        ts = TimeSeries(window_s=1.0)
        ts.observe(0.5, "lat", 1.0)
        ts.observe(1.5, "lat", 2.0)
        ts.observe(2.5, "lat", 4.0)
        snap = ts.snapshot()
        assert snap.merged("lat", 0, 2).count == 2
        assert snap.merged("lat", 2).count == 1
        assert snap.merged("lat", 0, None).count == 3

    def test_merged_unknown_series_is_empty(self):
        snap = self._sample()
        assert snap.merged("nope").count == 0

    def test_snapshot_is_picklable_and_comparable(self):
        snap = self._sample()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        assert clone.percentile_values("lat", 99.0) == snap.percentile_values(
            "lat", 99.0
        )

    def test_snapshot_is_decoupled_from_collector(self):
        ts = TimeSeries(window_s=1.0)
        ts.incr(0.0, "x")
        snap = ts.snapshot()
        ts.incr(0.0, "x")
        ts.incr(5.0, "x")
        assert snap.counter_values("x") == [1]


class TestFrameSnapshot:
    def test_defaults(self):
        f = FrameSnapshot(index=3, start_s=1.5)
        assert f.empty
        assert f.count("anything") == 0
        assert f.total("anything") == 0.0
        assert f.percentile("anything", 99.0) == 0.0

    def test_empty_snapshot_type_roundtrip(self):
        snap = TimeSeriesSnapshot(window_s=2.0)
        assert snap.frames == ()
        assert len(snap) == 0
