"""Batched I/O pipeline invariants and fast-path/oracle equivalences.

The perf work (request coalescing, the vectorized disk model, the array
submission path, the parallel sweep driver) is only admissible because every
fast path is observationally identical to the slow path it replaces.  These
tests pin each equivalence directly, complementing the end-to-end BENCH
fingerprint gate.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.bitmap import BlockBitmap
from repro.block.extent import Extent, ExtentFlags, ExtentMap
from repro.block.freelist import FreeExtentSet
from repro.config import DiskParams, SchedulerParams
from repro.core.parallel import resolve_jobs, run_cells
from repro.disk.array import DiskArray
from repro.disk.model import BlockRequest, ServiceTimeModel
from repro.disk.scheduler import ElevatorScheduler
from repro.errors import NoSpaceError
from repro.fs.dataplane import DataPlane
from repro.sim.metrics import Metrics

from tests.conftest import small_config

# ---------------------------------------------------------------------------
# Coalescing invariants (DataPlane._emit / _coalesce)
# ---------------------------------------------------------------------------

BPD = 16384  # capacity_blocks of the small test config's disks


def make_plane() -> DataPlane:
    return DataPlane(small_config())


#: (physical, length) runs, each confined to one disk of a 2-disk array.
run_lists = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, BPD - 17), st.integers(1, 16)).map(
        lambda t: (t[0] * BPD + t[1], t[2])
    ),
    min_size=1,
    max_size=40,
)


class TestEmitInvariants:
    @given(runs=run_lists, is_write=st.booleans())
    def test_blocks_preserved_and_no_cross_disk_merge(self, runs, is_write):
        plane = make_plane()
        before = plane.metrics.count("fs.coalesced_requests")
        out = plane._emit(list(runs), is_write)
        assert sum(r.nblocks for r in out) == sum(length for _, length in runs)
        for r in out:
            assert r.is_write is is_write
            # Never merges across a disk boundary.
            assert r.start // BPD == (r.end - 1) // BPD
        # Counter accounts exactly for the requests that disappeared.
        merged = plane.metrics.count("fs.coalesced_requests") - before
        assert merged == len(runs) - len(out)

    @given(runs=run_lists)
    def test_emit_matches_coalesce_oracle(self, runs):
        """_emit is the inline form of _coalesce over single-direction runs."""
        plane = make_plane()
        raw = [BlockRequest(p, n, is_write=True) for p, n in runs]
        assert plane._emit(list(runs), True) == plane._coalesce(raw)

    def test_adjacent_same_disk_runs_merge(self):
        plane = make_plane()
        out = plane._emit([(0, 4), (4, 4)], True)
        assert [(r.start, r.nblocks) for r in out] == [(0, 8)]

    def test_runs_meeting_at_disk_boundary_stay_split(self):
        plane = make_plane()
        out = plane._emit([(BPD - 4, 4), (BPD, 4)], True)
        assert len(out) == 2


class TestCoalesceInvariants:
    @given(
        batch=st.lists(
            st.tuples(st.integers(0, 2 * BPD - 9), st.integers(1, 8), st.booleans()),
            min_size=1,
            max_size=30,
        )
    )
    def test_blocks_and_direction_boundaries_preserved(self, batch):
        plane = make_plane()
        reqs = [BlockRequest(s, n, w) for s, n, w in batch if s + n <= 2 * BPD]
        if not reqs:
            return
        out = plane._coalesce(list(reqs))
        assert sum(r.nblocks for r in out) == sum(r.nblocks for r in reqs)
        # Merges only happen between same-direction neighbours, so per-
        # direction block totals are preserved too.
        for w in (True, False):
            assert sum(r.nblocks for r in out if r.is_write is w) == sum(
                r.nblocks for r in reqs if r.is_write is w
            )

    def test_read_write_boundary_never_merges(self):
        plane = make_plane()
        out = plane._coalesce([BlockRequest(0, 4, True), BlockRequest(4, 4, False)])
        assert len(out) == 2


# ---------------------------------------------------------------------------
# Vectorized service-time model vs the scalar oracle
# ---------------------------------------------------------------------------

request_batches = st.lists(
    st.tuples(st.integers(0, (1 << 20) - 64), st.integers(1, 64)),
    min_size=0,
    max_size=50,
)


class TestTimeBatchOracle:
    @given(batch=request_batches, head=st.integers(0, (1 << 20) - 1))
    @settings(max_examples=200)
    def test_matches_serial_time_for(self, batch, head):
        model = ServiceTimeModel(DiskParams(capacity_blocks=1 << 20))
        reqs = [BlockRequest(s, n) for s, n in batch]
        positioning, transfer = model.time_batch(head, reqs)
        assert positioning.shape == transfer.shape == (len(reqs),)
        h = head
        for i, r in enumerate(reqs):
            assert positioning[i] + transfer[i] == pytest.approx(
                model.time_for(h, r), abs=1e-9
            )
            h = r.end


# ---------------------------------------------------------------------------
# Array scheduler path vs the object path
# ---------------------------------------------------------------------------

scheduler_batches = st.lists(
    st.tuples(st.integers(0, 4000), st.integers(1, 32), st.booleans()),
    min_size=1,
    max_size=60,
)


class TestArrangeArraysEquivalence:
    @given(
        batch=scheduler_batches,
        gap=st.integers(0, 16),
        limit=st.sampled_from([1, 4, 16, 1024]),
    )
    @settings(max_examples=150)
    def test_matches_object_arrange(self, batch, gap, limit):
        params = SchedulerParams(merge_gap_blocks=gap, batch_limit=limit)
        reqs = [BlockRequest(s, n, w) for s, n, w in batch]
        oracle = ElevatorScheduler(params).arrange(list(reqs))

        sched = ElevatorScheduler(params)
        starts = np.array([r.start for r in reqs], dtype=np.int64)
        nblocks = np.array([r.nblocks for r in reqs], dtype=np.int64)
        writes = np.array([r.is_write for r in reqs], dtype=bool)
        s, b, w = sched.arrange_arrays(starts, nblocks, writes)
        got = list(zip(s.tolist(), b.tolist(), w.tolist()))
        assert got == [(r.start, r.nblocks, r.is_write) for r in oracle]


class TestSubmitArraysEquivalence:
    @given(
        batch=st.lists(
            st.tuples(st.integers(0, 2 * BPD - 33), st.integers(1, 32), st.booleans()),
            min_size=2,
            max_size=40,
        )
    )
    @settings(max_examples=50)
    def test_array_submit_is_bit_identical_to_object_submit(self, batch):
        reqs = [
            BlockRequest(s, n, w) for s, n, w in batch if (s % BPD) + n <= BPD
        ]
        if len(reqs) < 2:
            return
        params = DiskParams(capacity_blocks=BPD)

        fast = DiskArray(2, params, metrics=Metrics())
        assert fast._arrays_capable
        t_fast = fast.submit_batch(list(reqs))

        slow = DiskArray(2, params, metrics=Metrics())
        slow._arrays_capable = False  # force the per-request object path
        t_slow = slow.submit_batch(list(reqs))

        # Same IEEE-754 operations in the same order: exact equality, not
        # approx — the BENCH fingerprint gate depends on it.
        assert t_fast == t_slow
        assert fast.metrics.as_dict() == slow.metrics.as_dict()
        for name in fast.metrics.histogram_names():
            assert fast.metrics.histogram(name) == slow.metrics.histogram(name)


# ---------------------------------------------------------------------------
# Fused extent-map write scan vs its three-call decomposition
# ---------------------------------------------------------------------------

extent_layouts = st.lists(
    st.tuples(st.integers(0, 200), st.integers(1, 12), st.booleans()),
    min_size=0,
    max_size=12,
)


def build_map(layout) -> ExtentMap:
    """Insert non-overlapping extents; drop candidates that collide."""
    m = ExtentMap()
    covered: set[int] = set()
    phys = 0
    for logical, length, unwritten in layout:
        span = set(range(logical, logical + length))
        if span & covered:
            continue
        covered |= span
        flags = ExtentFlags.UNWRITTEN if unwritten else ExtentFlags.NONE
        # Scatter physically so extents never merge by accident.
        m.insert(Extent(logical, 1000 + phys * 100, length, flags))
        phys += 1
    return m


class TestScanWriteRange:
    @given(layout=extent_layouts, logical=st.integers(0, 220), count=st.integers(1, 40))
    @settings(max_examples=200)
    def test_matches_decomposed_queries(self, layout, logical, count):
        m = build_map(layout)
        holes, has_unwritten, runs = m.scan_write_range(logical, count)
        assert holes == m.holes_in_range(logical, count)
        overlapping = m.lookup_range(logical, count)
        assert has_unwritten == any(e.unwritten for e in overlapping)
        if holes or has_unwritten:
            assert runs is None
        else:
            assert runs == m.physical_runs(logical, count)


# ---------------------------------------------------------------------------
# Bitmap hinted wrap-around (regression for the unified _scan)
# ---------------------------------------------------------------------------


class TestBitmapHintedWraparound:
    def test_run_straddling_hint_found_by_wrap_pass(self):
        bm = BlockBitmap(64)
        bm.set_range(0, 60)  # free run is [60, 64)
        # First pass [62, 64) is too short; the wrap pass extends past the
        # hint by count-1 bits and must still find the straddling run.
        assert bm.find_free_run(4, hint=62) == 60

    def test_wraps_to_run_before_hint(self):
        bm = BlockBitmap(64)
        bm.set_range(8, 56)  # only [0, 8) free
        assert bm.find_free_run(8, hint=32) == 0

    def test_huge_hint_clamped(self):
        bm = BlockBitmap(64)
        bm.set_range(0, 32)
        assert bm.find_free_run(4, hint=10**9) == 32

    def test_no_run_raises(self):
        bm = BlockBitmap(16)
        bm.set_range(0, 7)
        bm.set_range(8, 8)  # lone free bit at 7
        with pytest.raises(NoSpaceError):
            bm.find_free_run(2, hint=7)


# ---------------------------------------------------------------------------
# Incremental free-block total (FreeExtentSet)
# ---------------------------------------------------------------------------


class TestFreeBlocksIncremental:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 1023), st.integers(1, 64), st.booleans()),
            max_size=60,
        )
    )
    @settings(max_examples=150)
    def test_total_matches_run_sum_after_every_op(self, ops):
        fes = FreeExtentSet(base=0, size=1024)
        allocated: list[tuple[int, int]] = []
        for hint, count, do_free in ops:
            if do_free and allocated:
                start, got = allocated.pop()
                fes.free(start, got)
            else:
                try:
                    start, got = fes.allocate_near(hint, count, minimum=1)
                except NoSpaceError:
                    continue
                allocated.append((start, got))
            # The incremental counter must agree with a full re-sum.
            assert fes.free_blocks == sum(length for _, length in fes.runs())
            assert fes.used_blocks == sum(got for _, got in allocated)
        fes.validate()


# ---------------------------------------------------------------------------
# Parallel sweep driver determinism
# ---------------------------------------------------------------------------


def _cube(spec, tracer=None):
    """Module-level so worker processes can unpickle it."""
    return (spec, spec**3)


class TestRunCellsDeterminism:
    def test_parallel_equals_serial_in_submission_order(self):
        cells = [7, 3, 11, 5, 2]
        serial = run_cells(cells, _cube, jobs=1)
        parallel = run_cells(cells, _cube, jobs=2)
        assert parallel == serial == [(c, c**3) for c in cells]

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3
        assert resolve_jobs(2) == 2  # explicit wins

    def test_single_cell_stays_in_process(self):
        assert run_cells([4], _cube, jobs=8) == [(4, 64)]

    def test_fig7_cells_identical_across_jobs(self):
        """End-to-end: the real sweep renders the same document serial and
        parallel (the property CI's perf-smoke job enforces at scale)."""
        from repro.bench.baseline import collect

        assert collect("fig7", scale=0.05, seed=0) == collect(
            "fig7", scale=0.05, seed=0, jobs=2
        )

    @pytest.mark.parametrize("runner", ["fig8", "fig9", "fig10"])
    def test_sweep_documents_identical_across_jobs(self, runner):
        """The metadata and application sweeps fan their cells out over
        worker processes too; the rendered document must not depend on the
        worker count."""
        from repro.bench.baseline import collect

        assert collect(runner, scale=0.05, seed=0, jobs=1) == collect(
            runner, scale=0.05, seed=0, jobs=4
        )
