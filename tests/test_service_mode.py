"""Open-loop service mode: event loop, stations, workload, runner.

Covers the three ISSUE-pinned properties — lazy-vs-materialized program
equivalence (hypothesis), open-loop determinism at any job count, and
bounded memory at a million streams — plus unit coverage of the heap
loop and the bounded-queue station math, and the observability layer:
telemetry frames, SLO verdicts, per-kind drop accounting and the
sampled-tracing fast-path guarantee.
"""

from __future__ import annotations

import json
import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.run import run
from repro.errors import ConfigError
from repro.fs.dataplane import DataPlane
from repro.meta.mds import MetadataServer
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop, Station
from repro.units import KiB, MiB
from repro.workloads.base import (
    MetaOp,
    ReadOp,
    StreamProgram,
    WriteOp,
    run_data_phase,
)
from repro.workloads.service import (
    ServiceSpec,
    ServiceWorkload,
    resolve_duration,
    resolve_rate,
)

from .conftest import small_config


class TestEventLoop:
    def test_merges_sources_in_time_order(self):
        seen = []
        loop = EventLoop(SimClock())
        loop.add_source(iter([(0.5, "a1"), (1.0, "a2")]),
                        lambda now, op: seen.append((now, op)))
        loop.add_source(iter([(0.2, "b1"), (0.2, "b2")]),
                        lambda now, op: seen.append((now, op)))
        assert loop.run() == 4
        assert seen == [(0.2, "b1"), (0.4, "b2"), (0.5, "a1"), (1.5, "a2")]
        assert loop.clock.now == 1.5

    def test_until_parks_clock_and_keeps_pending(self):
        seen = []
        loop = EventLoop(SimClock())
        loop.add_source(iter([(1.0, "x"), (1.0, "y")]),
                        lambda now, op: seen.append(op))
        assert loop.run(until=1.5) == 1
        assert seen == ["x"]
        assert loop.clock.now == 1.5
        assert len(loop) == 1  # "y" still pending
        assert loop.run(until=2.0) == 1
        assert seen == ["x", "y"]

    def test_tie_breaks_by_registration_order(self):
        seen = []
        loop = EventLoop(SimClock())
        loop.add_source(iter([(1.0, "first")]), lambda now, op: seen.append(op))
        loop.add_source(iter([(1.0, "second")]), lambda now, op: seen.append(op))
        loop.run()
        assert seen == ["first", "second"]

    def test_holds_one_pending_event_per_source(self):
        def infinite():
            while True:
                yield (1.0, "op")

        loop = EventLoop(SimClock())
        loop.add_source(infinite(), lambda now, op: None)
        loop.run(until=100.0)
        assert len(loop) == 1  # never more than one queued arrival
        assert loop.processed == 100

    def test_negative_dt_rejected(self):
        loop = EventLoop(SimClock())
        with pytest.raises(ConfigError, match="negative inter-arrival"):
            loop.add_source(iter([(-0.1, "bad")]), lambda now, op: None)


class TestStation:
    def test_idle_server_latency_is_service_time(self):
        st_ = Station("s", lambda op: 0.25, depth=4)
        assert st_.offer(0.0, None) == 0.25
        st_.drain()
        assert st_.latency.snapshot().maximum == 0.25
        assert st_.busy_s == 0.25
        assert st_.completed == 1

    def test_fifo_backlog_accumulates_queueing_delay(self):
        st_ = Station("s", lambda op: 1.0, depth=10)
        # Three back-to-back arrivals at t=0: sojourns 1, 2, 3.
        assert [st_.offer(0.0, None) for _ in range(3)] == [1.0, 2.0, 3.0]
        snap = st_.latency.snapshot()
        assert snap.count == 3 and snap.maximum == 3.0
        assert st_.in_flight == 3

    def test_bounded_queue_drops(self):
        st_ = Station("s", lambda op: 1.0, depth=2)
        assert st_.offer(0.0, None) is not None
        assert st_.offer(0.0, None) is not None
        assert st_.offer(0.0, None) is None  # queue full -> dropped
        assert st_.dropped == 1 and st_.started == 2 and st_.offered == 3
        # Dropped op is never serviced.
        assert st_.busy_s == 2.0

    def test_completions_reaped_before_depth_check(self):
        st_ = Station("s", lambda op: 1.0, depth=1)
        st_.offer(0.0, None)
        assert st_.offer(0.5, None) is None  # still busy
        assert st_.offer(1.5, None) is not None  # first op completed
        assert st_.completed == 1

    def test_server_idles_between_sparse_arrivals(self):
        st_ = Station("s", lambda op: 0.5, depth=4)
        st_.offer(0.0, None)
        done = st_.offer(10.0, None)  # long idle gap: starts at arrival
        assert done == 10.5
        assert st_.saturation(10.5) == pytest.approx(1.0 / 10.5)

    def test_drain_returns_last_completion(self):
        st_ = Station("s", lambda op: 1.0, depth=10)
        st_.offer(0.0, None)
        st_.offer(0.0, None)
        assert st_.drain() == 2.0
        assert st_.in_flight == 0 and st_.completed == 2

    def test_depth_validation(self):
        with pytest.raises(ConfigError, match="depth"):
            Station("s", lambda op: 0.0, depth=0)


# -- lazy-vs-materialized equivalence (the event-stream protocol) ------------

op_specs = st.lists(
    st.tuples(st.integers(0, 63), st.integers(1, 8), st.booleans()),
    min_size=1,
    max_size=24,
)


class TestLazyEquivalence:
    @given(specs=op_specs, dt=st.floats(0.0, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_program_iteration_strips_arrival_gaps(self, specs, dt):
        """A lazy factory program yields the same bare ops as a
        materialized list, with ``events()`` carrying the gaps."""
        ops = [
            WriteOp(None, off * 4096, n * 4096) if w else ReadOp(None, off * 4096, n * 4096)
            for off, n, w in specs
        ]
        lazy = StreamProgram(stream=1, ops=lambda: ((dt, op) for op in ops))
        eager = StreamProgram(stream=1, ops=list(ops))
        assert list(lazy) == ops == list(eager)
        events = list(lazy.events())
        assert [op for _, op in events] == ops
        assert all(gap == dt for gap, _ in events)
        assert [gap for gap, _ in eager.events()] == [0.0] * len(ops)
        # Re-iterable: a second pass re-derives the same sequence.
        assert list(lazy) == ops

    @given(specs=op_specs, seed=st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_closed_loop_runner_is_layout_identical(self, specs, seed):
        """run_data_phase produces bit-identical throughput and layout
        whether a program is lazy or materialized."""
        outcomes = []
        for variant in ("lazy", "eager"):
            plane = DataPlane(small_config())
            f = plane.create_file("shared.dat")
            ops = [
                WriteOp(f, off * 4096, n * 4096)
                for off, n, _ in specs
            ]
            source = (lambda ops=ops: ((0.1, op) for op in ops)) if variant == "lazy" else ops
            result = run_data_phase(
                plane, [StreamProgram(stream=1, ops=source)], seed=seed
            )
            outcomes.append((result, f.extent_count, f.size_bytes))
        assert outcomes[0] == outcomes[1]


# -- the service workload ----------------------------------------------------

def _small_service(streams=64, rate=2.0, duration=1.0, **kw):
    return ServiceSpec(
        streams=streams, rate=rate, duration_s=duration,
        request_bytes=16 * KiB, **kw,
    )


class TestServiceWorkload:
    def test_event_streams_deterministic_per_seed(self):
        cfg = small_config()
        spec = _small_service(seed=7)
        prefixes = []
        for _ in range(2):
            wl = ServiceWorkload(spec, DataPlane(cfg), MetadataServer(cfg))
            wl.setup()
            gen = wl.events("write")
            prefixes.append(
                [(dt, op.offset, op.nbytes) for dt, op in
                 (next(gen) for _ in range(50))]
            )
        assert prefixes[0] == prefixes[1]

    def test_kind_rates_partition_total_load(self):
        spec = _small_service(read_fraction=0.25, meta_fraction=0.25)
        total = sum(spec.kind_rate(k) for k in ("write", "read", "meta"))
        assert total == pytest.approx(spec.streams * spec.rate)

    def test_stream_folding_bounds_offsets(self):
        cfg = small_config()
        spec = _small_service(streams=10_000)
        wl = ServiceWorkload(spec, DataPlane(cfg), MetadataServer(cfg))
        wl.setup()
        gen = wl.events("write")
        max_offset = wl.regions * wl.region_bytes
        for _ in range(200):
            _, op = next(gen)
            assert 0 <= op.offset < max_offset
            assert op.offset % spec.request_bytes == 0

    def test_meta_ops_stay_in_bounded_pool(self):
        cfg = small_config()
        spec = _small_service(streams=4096, meta_fraction=0.9, read_fraction=0.05)
        wl = ServiceWorkload(spec, DataPlane(cfg), MetadataServer(cfg))
        wl.setup()
        gen = wl.events("meta")
        for _ in range(100):
            _, op = next(gen)
            assert isinstance(op, MetaOp)
            assert op.method in ("stat", "utime")

    def test_resolvers(self):
        assert resolve_rate("small") == 0.5
        assert resolve_rate(3.5) == 3.5
        assert resolve_duration("short") == 2.0
        assert resolve_duration(1.25) == 1.25
        with pytest.raises(ConfigError, match="unknown rate"):
            resolve_rate("warp")
        with pytest.raises(ConfigError, match="unknown duration"):
            resolve_duration("aeon")
        with pytest.raises(ConfigError, match="positive"):
            resolve_rate(0.0)

    def test_spec_validation(self):
        with pytest.raises(ConfigError, match="streams"):
            ServiceSpec(streams=0)
        with pytest.raises(ConfigError, match="room for writes"):
            ServiceSpec(read_fraction=0.7, meta_fraction=0.5)


# -- the service runner ------------------------------------------------------

class TestServiceRunner:
    def test_report_shape_and_percentiles(self):
        r = run("service", streams=200, rate="small", duration="short", seed=0)
        cell = r.payload.cells[0]
        assert cell.arrivals > 0
        assert 0 < cell.active_streams <= 200
        assert set(cell.stations) == {"data", "meta"}
        for st_ in cell.stations.values():
            assert st_.offered == st_.started + st_.dropped
            assert st_.p50_s <= st_.p99_s <= st_.p999_s
            assert st_.saturation >= 0.0
        assert "service:r0.5" in r.phases
        assert r.metrics.histogram("service.data.latency_s").count > 0

    def test_open_loop_determinism_jobs_1_vs_4(self):
        kw = dict(streams=300, rates=("small", "medium"), duration="short", seed=3)
        serial = run("service", **kw)
        fanned = run("service", jobs=4, **kw)
        assert serial.fingerprint == fanned.fingerprint
        assert serial.payload == fanned.payload
        assert serial.phases == fanned.phases

    def test_saturation_and_drops_rise_with_rate(self):
        r = run("service", streams=300, rates=("small", "large"),
                duration="short", seed=1, queue_depth=16)
        low = r.payload.get(0.5).stations["data"]
        high = r.payload.get(50.0).stations["data"]
        assert high.saturation > low.saturation
        assert high.dropped > low.dropped
        assert high.p99_s >= low.p99_s

    def test_execution_profile_does_not_change_results(self):
        kw = dict(streams=150, rate="small", duration="short", seed=2)
        batched = run("service", **kw)
        legacy = run("service", execution="legacy", **kw)
        assert batched.fingerprint == legacy.fingerprint
        assert batched.payload == legacy.payload

    def test_reports_depth_and_drops_by_kind(self):
        r = run("service", streams=300, rate="large", duration="short",
                seed=1, queue_depth=4)
        cell = r.payload.cells[0]
        data = cell.stations["data"]
        meta = cell.stations["meta"]
        assert data.depth == 4 and meta.depth == 4
        assert set(data.drops_by_kind) == {"write", "read"}
        assert set(meta.drops_by_kind) == {"meta"}
        # The per-kind split partitions each station's drop count.
        assert sum(data.drops_by_kind.values()) == data.dropped
        assert sum(meta.drops_by_kind.values()) == meta.dropped
        assert data.dropped > 0  # overload at depth 4: the split is live

    @pytest.mark.slow
    def test_million_streams_bounded_memory(self):
        """A 1M-stream open-loop run completes without materializing
        per-stream op lists: peak traced allocation stays within a few
        tens of MB (the per-stream counter array is 8 MB)."""
        tracemalloc.start()
        try:
            r = run("service", streams=1_000_000, rate=0.005,
                    duration="short", seed=0)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        cell = r.payload.cells[0]
        assert cell.arrivals > 1000
        assert cell.active_streams > 1000
        st_ = cell.stations["data"]
        assert st_.p999_s >= st_.p99_s >= st_.p50_s > 0.0
        assert peak < 64 * 1024 * 1024, f"peak {peak / 1e6:.1f} MB"


# -- telemetry, SLOs and sampled tracing -------------------------------------

class TestServiceTelemetry:
    def test_telemetry_produces_frame_grid(self):
        r = run("service", streams=200, rate="small", duration="short",
                seed=0, telemetry=True)
        cell = r.payload.cells[0]
        ts = cell.telemetry
        assert ts is not None
        # 50 windows across the arrival window (the last window may be
        # trimmed if nothing landed there).
        assert ts.window_s == pytest.approx(cell.duration_s / 50)
        assert 0 < len(ts.frames) <= 51
        # The loop-level arrivals counter accounts for every arrival.
        assert sum(ts.counter_values("arrivals")) == cell.arrivals
        assert "data.latency_s" in ts.hist_names()
        assert "data.queue_depth" in ts.hist_names()
        assert "data.busy_s" in ts.sum_names()
        # Station arrivals split by kind sum back to the station total.
        per_kind = sum(
            sum(ts.counter_values(f"data.{kind}.arrivals"))
            for kind in ("write", "read")
        )
        assert per_kind == sum(ts.counter_values("data.arrivals"))

    def test_explicit_window_width(self):
        r = run("service", streams=100, rate="small", duration="short",
                seed=0, telemetry=0.25)
        assert r.payload.cells[0].telemetry.window_s == 0.25

    def test_telemetry_off_by_default(self):
        r = run("service", streams=100, rate="small", duration="short", seed=0)
        cell = r.payload.cells[0]
        assert cell.telemetry is None and cell.slo is None
        assert r.payload.slo_verdict is None

    def test_slo_implies_telemetry_and_reports_verdict(self):
        r = run("service", streams=200, rate="small", duration="short",
                seed=0, slo=True)
        cell = r.payload.cells[0]
        assert cell.telemetry is not None
        assert cell.slo is not None
        assert {o.objective.series for o in cell.slo.results} == {
            "data.latency_s", "meta.latency_s",
        }
        assert cell.slo.verdict == "pass"
        assert r.payload.slo_verdict == "pass"

    def test_impossible_slo_fails(self):
        # p50 can legitimately be 0.0 in windows dominated by zero-cost
        # ops (cache hits), so even an absurd threshold doesn't taint
        # *every* window — but enough to blow any budget.
        r = run("service", streams=200, rate="small", duration="short",
                seed=0, slo="data.latency_s:p50<=1e-12")
        assert r.payload.slo_verdict == "fail"
        result = r.payload.cells[0].slo.results[0]
        assert result.windows > 0
        assert 0 < result.bad_windows <= result.windows
        assert result.burn_rate > 1.0
        assert result.worst > 0.0

    def test_telemetry_does_not_change_results_or_fingerprint(self):
        kw = dict(streams=200, rate="small", duration="short", seed=0)
        bare = run("service", **kw)
        observed = run("service", telemetry=True, slo=True, sample="1/50", **kw)
        assert bare.fingerprint == observed.fingerprint
        assert bare.phases == observed.phases
        assert bare.payload.cells[0].stations == observed.payload.cells[0].stations

    def test_determinism_across_jobs_and_repeats(self):
        kw = dict(streams=200, rates=("small", "medium"), duration="short",
                  seed=3, telemetry=True, slo=True)
        serial = run("service", **kw)
        fanned = run("service", jobs=4, **kw)
        again = run("service", **kw)
        assert serial.payload == fanned.payload == again.payload
        for a, b in zip(serial.payload.cells, fanned.payload.cells):
            assert a.telemetry == b.telemetry
            assert a.slo == b.slo


class TestSampledTracing:
    #: Large requests make every service op a multi-request batch, which is
    #: what engages the vectorized array path (single-request batches take
    #: the scalar path in any configuration).
    KW = dict(streams=200, rate="small", duration="short", seed=0,
              request_bytes=4 * MiB)

    def test_sampling_keeps_vectorized_path_engaged(self):
        base = run("service", **self.KW)
        sampled = run("service", sample="1/10", **self.KW)
        traced = run("service", trace=True, **self.KW)
        prof_base = base.payload.cells[0].io_profile
        prof_sampled = sampled.payload.cells[0].io_profile
        prof_traced = traced.payload.cells[0].io_profile
        # Untelemetered: everything vectorizes.
        assert prof_base["batches_vectorized"] > 0
        assert prof_base["batches_scalar"] == 0
        # Sampled: only the armed ops divert; the bulk stays vectorized.
        assert prof_sampled["batches_vectorized"] > 0
        assert prof_sampled["batches_scalar"] > 0
        assert prof_sampled["batches_vectorized"] > prof_sampled["batches_scalar"]
        # A whole-run tracer forces every batch scalar — the contrast that
        # makes the sampling guarantee meaningful.
        assert prof_traced["batches_vectorized"] == 0
        assert prof_traced["batches_scalar"] > 0

    def test_sampling_does_not_perturb_results(self):
        base = run("service", **self.KW)
        sampled = run("service", sample="1/10", **self.KW)
        assert base.payload.cells[0].stations == sampled.payload.cells[0].stations
        assert base.phases == sampled.phases

    def test_sampled_events_tag_only_sampled_streams(self):
        r = run("service", sample="1/10", **self.KW)
        events = r.trace.events()
        assert events, "sampling 1/10 of 200 streams must trace something"
        streams = {e.stream for e in events if e.stream is not None}
        assert streams, "armed events must carry stream ids"
        assert all(s % 10 == 0 for s in streams)
        # The service layer brackets each sampled op end-to-end.
        service_ops = {e.op for e in events if e.layer == "service"}
        assert any(op.endswith(".arrive") for op in service_ops)
        assert any(op.endswith(".sojourn") for op in service_ops)

    def test_explicit_tracer_wins_over_sample(self):
        from repro.obs import Tracer

        tr = Tracer()
        r = run("service", trace=tr, sample="1/10",
                streams=100, rate="small", duration="short", seed=0)
        assert r.trace is tr


class TestServiceCliTelemetry:
    ARGS = ["service", "--streams", "200", "--rate", "small",
            "--duration", "short", "--seed", "0"]

    def test_telemetry_flags_render_and_export(self, tmp_path, capsys):
        csv_path = tmp_path / "ts.csv"
        dash_path = tmp_path / "dash.txt"
        out_path = tmp_path / "svc.json"
        rc = main(self.ARGS + [
            "--telemetry", "--slo", "--sample", "1/50",
            "--telemetry-out", str(csv_path),
            "--dashboard-out", str(dash_path),
            "--out", str(out_path),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "drops by kind" in text
        assert "burn rate" in text
        assert "overall SLO verdict: pass" in text
        assert csv_path.read_text().startswith("window,start_s")
        assert "data.latency_s" in dash_path.read_text()
        doc = json.loads(out_path.read_text())
        assert doc["slo_verdict"] == "pass"

    def test_slo_failure_exits_nonzero(self, capsys):
        rc = main(self.ARGS + ["--slo", "data.latency_s:p50<=1e-12"])
        assert rc == 1
        assert "overall SLO verdict: fail" in capsys.readouterr().out

    def test_plain_run_has_no_slo_exit_semantics(self, capsys):
        assert main(self.ARGS) == 0
        assert "SLO" not in capsys.readouterr().out


class TestTelemetryOverhead:
    @pytest.mark.slow
    def test_million_streams_telemetry_overhead_bounded(self):
        """The observability acceptance pin: a 1M-stream run with
        per-window telemetry and 1/1000 sampled tracing stays within
        1.25x the untelemetered wall clock, and perturbs nothing (the
        fast-path introspection half of the pin lives in
        TestSampledTracing, at an operating point where the vectorized
        path actually engages)."""
        import time

        kw = dict(streams=1_000_000, rate=0.005, duration="short", seed=0)

        def best_of_two(**extra):
            best, result = float("inf"), None
            for _ in range(2):
                t0 = time.perf_counter()
                result = run("service", **kw, **extra)
                best = min(best, time.perf_counter() - t0)
            return best, result

        base_s, base = best_of_two()
        obs_s, obs = best_of_two(telemetry=True, sample="1/1000")
        cell = obs.payload.cells[0]
        assert cell.telemetry is not None and len(cell.telemetry.frames) > 0
        assert sum(cell.telemetry.counter_values("arrivals")) == cell.arrivals
        assert obs.trace.events(), "1/1000 of 1M streams must trace something"
        # Observe-only: identical stations, at bounded overhead.
        assert base.payload.cells[0].stations == cell.stations
        assert obs_s < 1.25 * base_s, (
            f"telemetry overhead {obs_s / base_s:.2f}x exceeds 1.25x "
            f"({obs_s:.2f}s vs {base_s:.2f}s)"
        )
