"""Open-loop service mode: event loop, stations, workload, runner.

Covers the three ISSUE-pinned properties — lazy-vs-materialized program
equivalence (hypothesis), open-loop determinism at any job count, and
bounded memory at a million streams — plus unit coverage of the heap
loop and the bounded-queue station math.
"""

from __future__ import annotations

import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.run import run
from repro.errors import ConfigError
from repro.fs.dataplane import DataPlane
from repro.meta.mds import MetadataServer
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop, Station
from repro.units import KiB
from repro.workloads.base import (
    MetaOp,
    ReadOp,
    StreamProgram,
    WriteOp,
    run_data_phase,
)
from repro.workloads.service import (
    ServiceSpec,
    ServiceWorkload,
    resolve_duration,
    resolve_rate,
)

from .conftest import small_config


class TestEventLoop:
    def test_merges_sources_in_time_order(self):
        seen = []
        loop = EventLoop(SimClock())
        loop.add_source(iter([(0.5, "a1"), (1.0, "a2")]),
                        lambda now, op: seen.append((now, op)))
        loop.add_source(iter([(0.2, "b1"), (0.2, "b2")]),
                        lambda now, op: seen.append((now, op)))
        assert loop.run() == 4
        assert seen == [(0.2, "b1"), (0.4, "b2"), (0.5, "a1"), (1.5, "a2")]
        assert loop.clock.now == 1.5

    def test_until_parks_clock_and_keeps_pending(self):
        seen = []
        loop = EventLoop(SimClock())
        loop.add_source(iter([(1.0, "x"), (1.0, "y")]),
                        lambda now, op: seen.append(op))
        assert loop.run(until=1.5) == 1
        assert seen == ["x"]
        assert loop.clock.now == 1.5
        assert len(loop) == 1  # "y" still pending
        assert loop.run(until=2.0) == 1
        assert seen == ["x", "y"]

    def test_tie_breaks_by_registration_order(self):
        seen = []
        loop = EventLoop(SimClock())
        loop.add_source(iter([(1.0, "first")]), lambda now, op: seen.append(op))
        loop.add_source(iter([(1.0, "second")]), lambda now, op: seen.append(op))
        loop.run()
        assert seen == ["first", "second"]

    def test_holds_one_pending_event_per_source(self):
        def infinite():
            while True:
                yield (1.0, "op")

        loop = EventLoop(SimClock())
        loop.add_source(infinite(), lambda now, op: None)
        loop.run(until=100.0)
        assert len(loop) == 1  # never more than one queued arrival
        assert loop.processed == 100

    def test_negative_dt_rejected(self):
        loop = EventLoop(SimClock())
        with pytest.raises(ConfigError, match="negative inter-arrival"):
            loop.add_source(iter([(-0.1, "bad")]), lambda now, op: None)


class TestStation:
    def test_idle_server_latency_is_service_time(self):
        st_ = Station("s", lambda op: 0.25, depth=4)
        assert st_.offer(0.0, None) == 0.25
        st_.drain()
        assert st_.latency.snapshot().maximum == 0.25
        assert st_.busy_s == 0.25
        assert st_.completed == 1

    def test_fifo_backlog_accumulates_queueing_delay(self):
        st_ = Station("s", lambda op: 1.0, depth=10)
        # Three back-to-back arrivals at t=0: sojourns 1, 2, 3.
        assert [st_.offer(0.0, None) for _ in range(3)] == [1.0, 2.0, 3.0]
        snap = st_.latency.snapshot()
        assert snap.count == 3 and snap.maximum == 3.0
        assert st_.in_flight == 3

    def test_bounded_queue_drops(self):
        st_ = Station("s", lambda op: 1.0, depth=2)
        assert st_.offer(0.0, None) is not None
        assert st_.offer(0.0, None) is not None
        assert st_.offer(0.0, None) is None  # queue full -> dropped
        assert st_.dropped == 1 and st_.started == 2 and st_.offered == 3
        # Dropped op is never serviced.
        assert st_.busy_s == 2.0

    def test_completions_reaped_before_depth_check(self):
        st_ = Station("s", lambda op: 1.0, depth=1)
        st_.offer(0.0, None)
        assert st_.offer(0.5, None) is None  # still busy
        assert st_.offer(1.5, None) is not None  # first op completed
        assert st_.completed == 1

    def test_server_idles_between_sparse_arrivals(self):
        st_ = Station("s", lambda op: 0.5, depth=4)
        st_.offer(0.0, None)
        done = st_.offer(10.0, None)  # long idle gap: starts at arrival
        assert done == 10.5
        assert st_.saturation(10.5) == pytest.approx(1.0 / 10.5)

    def test_drain_returns_last_completion(self):
        st_ = Station("s", lambda op: 1.0, depth=10)
        st_.offer(0.0, None)
        st_.offer(0.0, None)
        assert st_.drain() == 2.0
        assert st_.in_flight == 0 and st_.completed == 2

    def test_depth_validation(self):
        with pytest.raises(ConfigError, match="depth"):
            Station("s", lambda op: 0.0, depth=0)


# -- lazy-vs-materialized equivalence (the event-stream protocol) ------------

op_specs = st.lists(
    st.tuples(st.integers(0, 63), st.integers(1, 8), st.booleans()),
    min_size=1,
    max_size=24,
)


class TestLazyEquivalence:
    @given(specs=op_specs, dt=st.floats(0.0, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_program_iteration_strips_arrival_gaps(self, specs, dt):
        """A lazy factory program yields the same bare ops as a
        materialized list, with ``events()`` carrying the gaps."""
        ops = [
            WriteOp(None, off * 4096, n * 4096) if w else ReadOp(None, off * 4096, n * 4096)
            for off, n, w in specs
        ]
        lazy = StreamProgram(stream=1, ops=lambda: ((dt, op) for op in ops))
        eager = StreamProgram(stream=1, ops=list(ops))
        assert list(lazy) == ops == list(eager)
        events = list(lazy.events())
        assert [op for _, op in events] == ops
        assert all(gap == dt for gap, _ in events)
        assert [gap for gap, _ in eager.events()] == [0.0] * len(ops)
        # Re-iterable: a second pass re-derives the same sequence.
        assert list(lazy) == ops

    @given(specs=op_specs, seed=st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_closed_loop_runner_is_layout_identical(self, specs, seed):
        """run_data_phase produces bit-identical throughput and layout
        whether a program is lazy or materialized."""
        outcomes = []
        for variant in ("lazy", "eager"):
            plane = DataPlane(small_config())
            f = plane.create_file("shared.dat")
            ops = [
                WriteOp(f, off * 4096, n * 4096)
                for off, n, _ in specs
            ]
            source = (lambda ops=ops: ((0.1, op) for op in ops)) if variant == "lazy" else ops
            result = run_data_phase(
                plane, [StreamProgram(stream=1, ops=source)], seed=seed
            )
            outcomes.append((result, f.extent_count, f.size_bytes))
        assert outcomes[0] == outcomes[1]


# -- the service workload ----------------------------------------------------

def _small_service(streams=64, rate=2.0, duration=1.0, **kw):
    return ServiceSpec(
        streams=streams, rate=rate, duration_s=duration,
        request_bytes=16 * KiB, **kw,
    )


class TestServiceWorkload:
    def test_event_streams_deterministic_per_seed(self):
        cfg = small_config()
        spec = _small_service(seed=7)
        prefixes = []
        for _ in range(2):
            wl = ServiceWorkload(spec, DataPlane(cfg), MetadataServer(cfg))
            wl.setup()
            gen = wl.events("write")
            prefixes.append(
                [(dt, op.offset, op.nbytes) for dt, op in
                 (next(gen) for _ in range(50))]
            )
        assert prefixes[0] == prefixes[1]

    def test_kind_rates_partition_total_load(self):
        spec = _small_service(read_fraction=0.25, meta_fraction=0.25)
        total = sum(spec.kind_rate(k) for k in ("write", "read", "meta"))
        assert total == pytest.approx(spec.streams * spec.rate)

    def test_stream_folding_bounds_offsets(self):
        cfg = small_config()
        spec = _small_service(streams=10_000)
        wl = ServiceWorkload(spec, DataPlane(cfg), MetadataServer(cfg))
        wl.setup()
        gen = wl.events("write")
        max_offset = wl.regions * wl.region_bytes
        for _ in range(200):
            _, op = next(gen)
            assert 0 <= op.offset < max_offset
            assert op.offset % spec.request_bytes == 0

    def test_meta_ops_stay_in_bounded_pool(self):
        cfg = small_config()
        spec = _small_service(streams=4096, meta_fraction=0.9, read_fraction=0.05)
        wl = ServiceWorkload(spec, DataPlane(cfg), MetadataServer(cfg))
        wl.setup()
        gen = wl.events("meta")
        for _ in range(100):
            _, op = next(gen)
            assert isinstance(op, MetaOp)
            assert op.method in ("stat", "utime")

    def test_resolvers(self):
        assert resolve_rate("small") == 0.5
        assert resolve_rate(3.5) == 3.5
        assert resolve_duration("short") == 2.0
        assert resolve_duration(1.25) == 1.25
        with pytest.raises(ConfigError, match="unknown rate"):
            resolve_rate("warp")
        with pytest.raises(ConfigError, match="unknown duration"):
            resolve_duration("aeon")
        with pytest.raises(ConfigError, match="positive"):
            resolve_rate(0.0)

    def test_spec_validation(self):
        with pytest.raises(ConfigError, match="streams"):
            ServiceSpec(streams=0)
        with pytest.raises(ConfigError, match="room for writes"):
            ServiceSpec(read_fraction=0.7, meta_fraction=0.5)


# -- the service runner ------------------------------------------------------

class TestServiceRunner:
    def test_report_shape_and_percentiles(self):
        r = run("service", streams=200, rate="small", duration="short", seed=0)
        cell = r.payload.cells[0]
        assert cell.arrivals > 0
        assert 0 < cell.active_streams <= 200
        assert set(cell.stations) == {"data", "meta"}
        for st_ in cell.stations.values():
            assert st_.offered == st_.started + st_.dropped
            assert st_.p50_s <= st_.p99_s <= st_.p999_s
            assert st_.saturation >= 0.0
        assert "service:r0.5" in r.phases
        assert r.metrics.histogram("service.data.latency_s").count > 0

    def test_open_loop_determinism_jobs_1_vs_4(self):
        kw = dict(streams=300, rates=("small", "medium"), duration="short", seed=3)
        serial = run("service", **kw)
        fanned = run("service", jobs=4, **kw)
        assert serial.fingerprint == fanned.fingerprint
        assert serial.payload == fanned.payload
        assert serial.phases == fanned.phases

    def test_saturation_and_drops_rise_with_rate(self):
        r = run("service", streams=300, rates=("small", "large"),
                duration="short", seed=1, queue_depth=16)
        low = r.payload.get(0.5).stations["data"]
        high = r.payload.get(50.0).stations["data"]
        assert high.saturation > low.saturation
        assert high.dropped > low.dropped
        assert high.p99_s >= low.p99_s

    def test_execution_profile_does_not_change_results(self):
        kw = dict(streams=150, rate="small", duration="short", seed=2)
        batched = run("service", **kw)
        legacy = run("service", execution="legacy", **kw)
        assert batched.fingerprint == legacy.fingerprint
        assert batched.payload == legacy.payload

    @pytest.mark.slow
    def test_million_streams_bounded_memory(self):
        """A 1M-stream open-loop run completes without materializing
        per-stream op lists: peak traced allocation stays within a few
        tens of MB (the per-stream counter array is 8 MB)."""
        tracemalloc.start()
        try:
            r = run("service", streams=1_000_000, rate=0.005,
                    duration="short", seed=0)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        cell = r.payload.cells[0]
        assert cell.arrivals > 1000
        assert cell.active_streams > 1000
        st_ = cell.stations["data"]
        assert st_.p999_s >= st_.p99_s >= st_.p50_s > 0.0
        assert peak < 64 * 1024 * 1024, f"peak {peak / 1e6:.1f} MB"
