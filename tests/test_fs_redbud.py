"""Path-level facade: namespace, data ops, metadata aggregation."""

import pytest

from repro.errors import FileExists, FileNotFound, MetadataError
from repro.fs.redbud import RedbudFileSystem
from repro.units import KiB, MiB

from tests.conftest import small_config


@pytest.fixture(params=["normal", "embedded"])
def fs(request) -> RedbudFileSystem:
    return RedbudFileSystem(small_config(layout=request.param))


class TestNamespace:
    def test_mkdir_create_stat(self, fs):
        fs.mkdir("/proj")
        fs.create("/proj/data.odb")
        inode = fs.stat("/proj/data.odb")
        assert inode.name == "data.odb"
        assert fs.exists("/proj/data.odb")

    def test_nested_dirs(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        fs.create("/a/b/c")
        assert fs.readdir("/a/b") == ["c"]

    def test_duplicate_rejected(self, fs):
        fs.create("/f")
        with pytest.raises(FileExists):
            fs.create("/f")
        with pytest.raises(FileExists):
            fs.mkdir("/f")

    def test_missing_parent_rejected(self, fs):
        with pytest.raises(FileNotFound):
            fs.create("/no/such/file")

    def test_relative_path_rejected(self, fs):
        with pytest.raises(MetadataError):
            fs.create("relative.txt")

    def test_unlink(self, fs):
        fs.create("/f")
        fs.write("/f", 0, 64 * KiB)
        free = fs.data.fsm.free_blocks
        fs.unlink("/f")
        assert not fs.exists("/f")
        assert fs.data.fsm.free_blocks > free

    def test_rename_file(self, fs):
        fs.create("/a")
        fs.rename("/a", "/b")
        assert fs.exists("/b")
        assert not fs.exists("/a")
        assert fs.stat("/b").name == "b"

    def test_rename_directory_moves_children(self, fs):
        fs.mkdir("/d")
        fs.create("/d/f")
        fs.rename("/d", "/e")
        assert fs.exists("/e/f")
        assert not fs.exists("/d/f")
        assert fs.stat("/e/f").name == "f"

    def test_readdir_stat(self, fs):
        fs.mkdir("/d")
        for i in range(5):
            fs.create(f"/d/f{i}")
        inodes = fs.readdir_stat("/d")
        assert {i.name for i in inodes} == {f"f{i}" for i in range(5)}


class TestDataOps:
    def test_write_read_costs_time(self, fs):
        fs.create("/f")
        tw = fs.write("/f", 0, 1 * MiB)
        tr = fs.read("/f", 0, 1 * MiB)
        assert tw > 0.0
        assert tr > 0.0

    def test_read_of_unwritten_is_free(self, fs):
        fs.create("/f")
        assert fs.read("/f", 0, 4096) == 0.0

    def test_open_charges_getlayout(self, fs):
        fs.create("/f")
        before = fs.mds.metrics.count("mds.op.open_getlayout")
        fs.open("/f")
        assert fs.mds.metrics.count("mds.op.open_getlayout") == before + 1

    def test_sync_layout_to_mds(self, fs):
        fs.create("/f")
        fs.write("/f", 0, 256 * KiB)
        fs.sync_layout_to_mds("/f")
        inode = fs.stat("/f")
        assert inode.extent_records == fs.file_handle("/f").extent_count

    def test_fsync_delayed_policy(self):
        fs = RedbudFileSystem(small_config(policy="delayed"))
        fs.create("/f")
        assert fs.write("/f", 0, 64 * KiB) == 0.0  # buffered
        assert fs.fsync("/f") > 0.0

    def test_path_normalization(self, fs):
        fs.mkdir("/d")
        fs.create("/d/../d/./f")
        assert fs.exists("/d/f")
