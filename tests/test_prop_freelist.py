"""Property-based tests for the free-extent set.

Invariant under any sequence of allocations and frees: the set stays
sorted, coalesced and in-range, and block conservation holds (free +
allocated == region size).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.block.freelist import FreeExtentSet
from repro.errors import NoSpaceError

REGION = 512


class FreeListMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.fes = FreeExtentSet(base=0, size=REGION)
        self.allocated: list[tuple[int, int]] = []

    @rule(
        hint=st.integers(min_value=0, max_value=REGION - 1),
        count=st.integers(min_value=1, max_value=64),
    )
    def allocate(self, hint: int, count: int) -> None:
        try:
            start, got = self.fes.allocate_near(hint, count)
        except NoSpaceError:
            assert self.fes.largest_run == 0
            return
        assert 1 <= got <= count
        self.allocated.append((start, got))

    @rule(data=st.data())
    def free_one(self, data) -> None:
        if not self.allocated:
            return
        idx = data.draw(st.integers(min_value=0, max_value=len(self.allocated) - 1))
        start, count = self.allocated.pop(idx)
        self.fes.free(start, count)

    @rule(data=st.data())
    def free_partial(self, data) -> None:
        if not self.allocated:
            return
        idx = data.draw(st.integers(min_value=0, max_value=len(self.allocated) - 1))
        start, count = self.allocated[idx]
        if count < 2:
            return
        cut = data.draw(st.integers(min_value=1, max_value=count - 1))
        # Free the tail [start+cut, start+count); keep the head allocated.
        self.fes.free(start + cut, count - cut)
        self.allocated[idx] = (start, cut)

    @invariant()
    def structure_valid(self) -> None:
        self.fes.validate()

    @invariant()
    def conservation(self) -> None:
        held = sum(c for _, c in self.allocated)
        assert self.fes.free_blocks + held == REGION

    @invariant()
    def no_allocated_block_is_free(self) -> None:
        for start, count in self.allocated:
            assert not self.fes.is_free(start, 1)
            assert not self.fes.is_free(start + count - 1, 1)


TestFreeListMachine = FreeListMachine.TestCase
TestFreeListMachine.settings = settings(max_examples=60, stateful_step_count=40)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=REGION - 1),
            st.integers(min_value=1, max_value=32),
        ),
        max_size=30,
    )
)
def test_allocate_never_overlaps(requests):
    fes = FreeExtentSet(0, REGION)
    seen: set[int] = set()
    for hint, count in requests:
        try:
            start, got = fes.allocate_near(hint, count)
        except NoSpaceError:
            break
        blocks = set(range(start, start + got))
        assert not blocks & seen
        seen |= blocks
