"""Shared fixtures: small, fast configurations for unit/integration tests."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

# Derandomize property tests on CI so red builds reproduce locally from the
# printed blob; "dev" keeps the default randomized exploration.
settings.register_profile("ci", derandomize=True, print_blob=True)
settings.register_profile("dev")
settings.load_profile("ci" if os.environ.get("CI") else "dev")

from repro.config import (
    AllocPolicyParams,
    CacheParams,
    DiskParams,
    FSConfig,
    MetaParams,
    SchedulerParams,
)

#: A tiny disk: 64 MiB (16384 blocks of 4 KiB).
SMALL_BLOCKS = 16384


@pytest.fixture
def small_disk_params() -> DiskParams:
    return DiskParams(capacity_blocks=SMALL_BLOCKS)


@pytest.fixture
def small_meta_params() -> MetaParams:
    # 4 groups x 2048 blocks, 256 inodes per group, small journal.
    return MetaParams(
        block_groups=4,
        blocks_per_group=2048,
        inodes_per_group=256,
        journal_blocks=128,
        journal_interval_ops=16,
        dir_prealloc_blocks=2,
    )


def small_config(policy: str = "ondemand", layout: str = "embedded", **kw) -> FSConfig:
    """A complete small FSConfig for fast end-to-end tests."""
    return FSConfig(
        name=f"test-{policy}-{layout}",
        ndisks=kw.pop("ndisks", 2),
        stripe_blocks=kw.pop("stripe_blocks", 64),
        pags_per_disk=kw.pop("pags_per_disk", 2),
        disk=DiskParams(capacity_blocks=SMALL_BLOCKS),
        mds_disk=DiskParams(capacity_blocks=SMALL_BLOCKS),
        scheduler=SchedulerParams(),
        cache=CacheParams(capacity_blocks=kw.pop("cache_blocks", 1024)),
        alloc=AllocPolicyParams(policy=policy, **kw.pop("alloc_kw", {})),
        meta=MetaParams(
            layout=layout,
            block_groups=4,
            blocks_per_group=2048,
            inodes_per_group=256,
            journal_blocks=128,
            journal_interval_ops=16,
            dir_prealloc_blocks=2,
            **kw.pop("meta_kw", {}),
        ),
        **kw,
    )


@pytest.fixture
def config() -> FSConfig:
    return small_config()
