"""Journal wrap-around and MFS geometry/allocation."""

import pytest

from repro.config import DiskParams, MetaParams
from repro.disk.model import BlockRequest
from repro.errors import MetadataError, NoSpaceError
from repro.meta.journal import Journal
from repro.meta.mfs import MetadataFS


class TestJournal:
    def test_sequential_appends(self):
        j = Journal(base_block=1, nblocks=16)
        r1 = j.append(1)
        r2 = j.append(1)
        assert r1 == [BlockRequest(1, 1, is_write=True)]
        assert r2 == [BlockRequest(2, 1, is_write=True)]
        assert j.records_written == 2

    def test_wraps(self):
        j = Journal(base_block=10, nblocks=4)
        j.append(3)
        reqs = j.append(2)
        assert [(r.start, r.nblocks) for r in reqs] == [(13, 1), (10, 1)]

    def test_oversized_append_rejected(self):
        with pytest.raises(MetadataError):
            Journal(0, 4).append(5)

    def test_invalid_region_rejected(self):
        with pytest.raises(MetadataError):
            Journal(-1, 4)
        with pytest.raises(MetadataError):
            Journal(0, 0)


@pytest.fixture
def mfs() -> MetadataFS:
    params = MetaParams(
        block_groups=4,
        blocks_per_group=2048,
        inodes_per_group=256,
        journal_blocks=64,
    )
    return MetadataFS(params, DiskParams(capacity_blocks=16384))


class TestGeometry:
    def test_layout_regions_do_not_overlap(self, mfs):
        assert mfs.journal_base == 1
        assert mfs.first_group_block == 65
        assert mfs.group_base(1) == 65 + 2048
        assert mfs.block_bitmap_block(0) == 65
        assert mfs.inode_bitmap_block(0) == 66
        assert mfs.itable_base(0) == 67
        assert mfs.data_base(0) == 67 + mfs.itable_blocks

    def test_itable_sizing(self, mfs):
        # 256 inodes at 16 per 4 KiB block.
        assert mfs.inodes_per_block == 16
        assert mfs.itable_blocks == 16

    def test_capacity_check(self):
        with pytest.raises(MetadataError):
            MetadataFS(
                MetaParams(block_groups=64, blocks_per_group=32768),
                DiskParams(capacity_blocks=1024),
            )

    def test_group_of_block(self, mfs):
        assert mfs.group_of_block(mfs.data_base(2)) == 2
        with pytest.raises(MetadataError):
            mfs.group_of_block(0)  # superblock is below the group region

    def test_itable_block_of(self, mfs):
        block, slot = mfs.itable_block_of(0)
        assert (block, slot) == (mfs.itable_base(0), 0)
        block, slot = mfs.itable_block_of(17)
        assert (block, slot) == (mfs.itable_base(0) + 1, 1)
        block, slot = mfs.itable_block_of(256)  # first inode of group 1
        assert block == mfs.itable_base(1)


class TestInodeAllocation:
    def test_alloc_in_preferred_group(self, mfs):
        ino, dirty = mfs.alloc_inode(2)
        assert ino == 2 * 256
        assert dirty == [mfs.inode_bitmap_block(2)]

    def test_fallback_when_group_full(self, mfs):
        for _ in range(256):
            mfs.alloc_inode(0)
        ino, _ = mfs.alloc_inode(0)
        assert ino == 256  # spilled to group 1

    def test_free_and_reuse(self, mfs):
        ino, _ = mfs.alloc_inode(0)
        dirty = mfs.free_inode(ino)
        assert dirty == [mfs.inode_bitmap_block(0)]
        ino2, _ = mfs.alloc_inode(0)
        assert ino2 == ino

    def test_exhaustion(self, mfs):
        for _ in range(4 * 256):
            mfs.alloc_inode(0)
        with pytest.raises(NoSpaceError):
            mfs.alloc_inode(0)


class TestDataAllocation:
    def test_alloc_in_group_data_area(self, mfs):
        start, got, dirty = mfs.alloc_data(1, 4)
        assert got == 4
        assert mfs.group_of_block(start) == 1
        assert start >= mfs.data_base(1)
        assert dirty == [mfs.block_bitmap_block(1)]

    def test_degrades_to_smaller_runs(self, mfs):
        # Consume the whole group-0 data area except scattered single blocks.
        total = mfs.data_blocks_per_group
        start, got, _ = mfs.alloc_data(0, total)
        assert got == total
        # Free every other block of a small range to fragment.
        for i in range(0, 8, 2):
            mfs.free_data(start + i, 1)
        s2, g2, _ = mfs.alloc_data(0, 4, minimum=1)
        assert g2 == 1

    def test_falls_to_next_group(self, mfs):
        mfs.alloc_data(0, mfs.data_blocks_per_group)
        start, _, _ = mfs.alloc_data(0, 4)
        assert mfs.group_of_block(start) == 1

    def test_free_validates_range(self, mfs):
        with pytest.raises(MetadataError):
            mfs.free_data(mfs.block_bitmap_block(0), 1)

    def test_utilization(self, mfs):
        assert mfs.data_utilization == 0.0
        mfs.alloc_data(0, mfs.data_blocks_per_group // 2)
        assert 0.1 < mfs.data_utilization < 0.2  # half of one of four groups

    def test_dir_rotor_cycles(self, mfs):
        groups = [mfs.next_dir_group() for _ in range(6)]
        assert groups == [0, 1, 2, 3, 0, 1]
