"""CLI figure commands: each prints its table end-to-end at tiny scale."""

import pytest

from repro.cli import main

pytestmark = pytest.mark.slow


class TestFigureCommands:
    def test_fig6a(self, capsys):
        assert main(["fig6a", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Fig 6(a)" in out
        assert "ondemand" in out

    def test_fig6b(self, capsys):
        assert main(["fig6b", "--scale", "0.1"]) == 0
        assert "Fig 6(b)" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "IOR" in out
        assert "collective" in out

    def test_table1(self, capsys):
        assert main(["table1", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "seg counts" in out
        assert "vanilla" in out

    def test_fig8(self, capsys):
        assert main(["fig8", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Metarates" in out
        assert "readdir-stat" in out

    def test_fig9(self, capsys):
        assert main(["fig9", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "aging" in out
        assert "redbud-mif" in out

    def test_fig10(self, capsys):
        assert main(["fig10", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "postmark" in out
        assert "make-clean" in out
