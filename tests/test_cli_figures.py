"""CLI figure commands: each prints its table end-to-end at tiny scale."""

import pytest

from repro.cli import main

pytestmark = pytest.mark.slow


class TestFigureCommands:
    def test_fig6a(self, capsys):
        assert main(["fig6a", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Fig 6(a)" in out
        assert "ondemand" in out

    def test_fig6b(self, capsys):
        assert main(["fig6b", "--scale", "0.1"]) == 0
        assert "Fig 6(b)" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "IOR" in out
        assert "collective" in out

    def test_table1(self, capsys):
        assert main(["table1", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "seg counts" in out
        assert "vanilla" in out

    def test_fig8(self, capsys):
        assert main(["fig8", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Metarates" in out
        assert "readdir-stat" in out

    def test_fig9(self, capsys):
        assert main(["fig9", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "aging" in out
        assert "redbud-mif" in out

    def test_fig10(self, capsys):
        assert main(["fig10", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "postmark" in out
        assert "make-clean" in out


class TestInspectCommand:
    def test_inspect_fig6a_smoke(self, capsys):
        assert main(["inspect", "fig6a", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "LayoutReport" in out
        assert "interleave-factor" in out
        assert "fragmentation-degree" in out
        assert "free space" in out
        assert "seek-cost" in out
        assert "block map" in out

    def test_inspect_tag_filter_and_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "layout.json"
        assert (
            main(
                [
                    "inspect", "fig6a", "--scale", "smoke",
                    "--tag", "static:n32", "--json", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "static:n32" in out
        assert "reservation:n32" not in out
        doc = json.loads(out_path.read_text())
        assert set(doc) == {"static:n32"}

    def test_inspect_unknown_tag_errors(self, capsys):
        assert (
            main(["inspect", "fig6a", "--scale", "smoke", "--tag", "zzz"]) == 1
        )
        assert "no capture tag" in capsys.readouterr().err

    def test_inspect_mds_runner(self, capsys):
        assert main(["inspect", "fig8", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "mds" in out
        assert "directories:" in out
