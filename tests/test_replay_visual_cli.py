"""Trace replay, layout visualization, and the command-line interface."""

import pytest

from repro.errors import ConfigError
from repro.cli import main
from repro.fs.dataplane import DataPlane
from repro.sim.visual import extent_histogram, layout_map, utilization_bars
from repro.units import KiB, MiB
from repro.workloads.replay import dump_trace, load_trace, read_trace, replay, save_trace
from repro.workloads.traces import TraceRecord, synth_checkpoint_trace

from tests.conftest import small_config


class TestTraceFormat:
    def test_roundtrip(self):
        records = synth_checkpoint_trace(4, 64 * KiB, 16 * KiB, jitter=0.2, seed=3)
        parsed = load_trace(dump_trace(records))
        assert parsed == records

    def test_comments_and_blanks_ignored(self):
        text = "# comment\n\n0,1,write,0,4096\n"
        records = load_trace(text)
        assert len(records) == 1
        assert records[0].proc == 1

    def test_bad_field_count_rejected(self):
        with pytest.raises(ConfigError):
            load_trace("1,2,3\n")

    def test_bad_int_rejected(self):
        with pytest.raises(ConfigError):
            load_trace("x,1,write,0,4096\n")

    def test_file_roundtrip(self, tmp_path):
        records = [TraceRecord(0, 0, "write", 0, 4096)]
        path = tmp_path / "t.trace"
        save_trace(records, str(path))
        assert read_trace(str(path)) == records


class TestReplay:
    def test_replay_writes_everything(self):
        plane = DataPlane(small_config())
        records = synth_checkpoint_trace(4, 256 * KiB, 16 * KiB)
        f = plane.create_file("/t", expected_bytes=1 * MiB)
        result = replay(plane, f, records, skip_probability=0.0)
        assert result.bytes_moved == 1 * MiB
        assert f.written_blocks == 256

    def test_replay_validates_threads(self):
        plane = DataPlane(small_config())
        f = plane.create_file("/t")
        with pytest.raises(ConfigError):
            replay(plane, f, [], threads_per_client=0)


class TestVisual:
    @pytest.fixture
    def plane_file(self):
        plane = DataPlane(small_config(policy="ondemand"))
        f = plane.create_file("/v")
        for i in range(16):
            plane.write(f, 1, i * 64 * KiB, 64 * KiB)
        return plane, f

    def test_layout_map_width_and_glyphs(self, plane_file):
        plane, f = plane_file
        art = layout_map(plane, f, slot=0, width=32)
        assert len(art) == 32
        assert any(c != "." for c in art)

    def test_layout_map_empty_file(self):
        plane = DataPlane(small_config())
        f = plane.create_file("/e")
        assert layout_map(plane, f, width=10) == "." * 10

    def test_layout_map_validation(self, plane_file):
        plane, f = plane_file
        with pytest.raises(ValueError):
            layout_map(plane, f, slot=99)
        with pytest.raises(ValueError):
            layout_map(plane, f, width=0)

    def test_extent_histogram_counts(self, plane_file):
        _, f = plane_file
        out = extent_histogram(f)
        assert f"extents: {f.extent_count}" in out

    def test_extent_histogram_empty(self):
        plane = DataPlane(small_config())
        f = plane.create_file("/e")
        assert extent_histogram(f) == "(no extents)"

    def test_utilization_bars(self, plane_file):
        plane, _ = plane_file
        out = utilization_bars(plane, width=10)
        assert out.count("disk") == plane.config.ndisks


class TestCli:
    def test_no_command_shows_help_on_stderr(self, capsys):
        assert main([]) == 2
        captured = capsys.readouterr()
        assert "usage" in captured.err
        assert captured.out == ""

    def test_list_runners(self, capsys):
        assert main(["--list"]) == 0
        listed = capsys.readouterr().out.split()
        assert "fig6a" in listed and "table1" in listed

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "redbud-mif" in out
        assert "embedded" in out

    def test_microbench(self, capsys):
        rc = main(
            ["microbench", "--streams", "8", "--file-mib", "16", "--policy", "ondemand"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "read-back" in out
        assert "extents:" in out

    def test_trace_synth_and_replay(self, tmp_path, capsys):
        path = str(tmp_path / "x.trace")
        assert main(
            ["trace-synth", path, "--procs", "4", "--region-kib", "256"]
        ) == 0
        assert main(["trace-replay", path, "--policies", "ondemand"]) == 0
        out = capsys.readouterr().out
        assert "extents" in out

    def test_claims(self, capsys):
        # Tiny scale just exercises the command path.
        assert main(["claims", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "interference" in out
        assert "prealloc waste" in out

    def test_defrag(self, capsys):
        assert main(["defrag", "--streams", "8", "--file-mib", "16"]) == 0
        out = capsys.readouterr().out
        assert "before:" in out
        assert "after:" in out
        assert "defrag: moved" in out

    def test_fsck_finds_and_repairs_corruption(self, capsys):
        assert main(["fsck", "--scale", "0.3", "--seed", "3"]) == 1
        out = capsys.readouterr().out
        assert "crashed image:" in out
        assert "finding(s)" in out
        assert main(["fsck", "--scale", "0.3", "--seed", "3", "--repair"]) == 0
        out = capsys.readouterr().out
        assert "clean after" in out
