"""Stateful property test: the data plane under random op sequences.

The machine performs random creates, writes (any policy state), reads,
fsyncs, closes, deletes and crash-recoveries, and holds three invariants:

1. fsck stays clean (no double allocation, extents in-bounds, maps valid);
2. written blocks per file match the byte ranges the model wrote;
3. deleting everything returns the file system to its starting occupancy.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.fs.dataplane import DataPlane
from repro.fs.verify import check_dataplane
from repro.units import KiB

from tests.conftest import small_config

_POLICY = st.sampled_from(["vanilla", "reservation", "static", "ondemand", "hybrid"])


class DataPlaneMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.plane = DataPlane(small_config(policy="ondemand"))
        self.initial_free = self.plane.fsm.free_blocks
        self.files: dict[str, set[int]] = {}  # name -> model of written blocks
        self.counter = 0

    # -- rules ----------------------------------------------------------------
    @rule(declared=st.booleans())
    def create(self, declared: bool) -> None:
        name = f"/f{self.counter}"
        self.counter += 1
        self.plane.create_file(
            name, expected_bytes=256 * KiB if declared else None
        )
        self.files[name] = set()

    def _pick(self, data):
        names = sorted(self.files)
        idx = data.draw(st.integers(min_value=0, max_value=len(names) - 1))
        name = names[idx]
        f = next(x for x in self.plane.files() if x.name == name)
        return name, f

    @precondition(lambda self: self.files)
    @rule(
        data=st.data(),
        stream=st.integers(min_value=0, max_value=3),
        block=st.integers(min_value=0, max_value=255),
        nblocks=st.integers(min_value=1, max_value=16),
    )
    def write(self, data, stream: int, block: int, nblocks: int) -> None:
        name, f = self._pick(data)
        requests = self.plane.write(
            f, stream, block * 4096, nblocks * 4096
        )
        self.files[name] |= set(range(block, block + nblocks))
        for r in requests:
            assert r.is_write

    @precondition(lambda self: self.files)
    @rule(data=st.data(), block=st.integers(0, 300), nblocks=st.integers(1, 16))
    def read(self, data, block: int, nblocks: int) -> None:
        name, f = self._pick(data)
        requests = self.plane.read(f, block * 4096, nblocks * 4096)
        covered = sum(r.nblocks for r in requests)
        expected = len(
            self.files[name] & set(range(block, block + nblocks))
        )
        # Reads cover exactly the written intersection (holes are free).
        assert covered == expected

    @precondition(lambda self: self.files)
    @rule(data=st.data())
    def close(self, data) -> None:
        _, f = self._pick(data)
        self.plane.close_file(f)

    @precondition(lambda self: self.files)
    @rule(data=st.data())
    def delete(self, data) -> None:
        name, f = self._pick(data)
        self.plane.close_file(f)
        self.plane.delete_file(f)
        del self.files[name]

    @rule()
    def crash_recover(self) -> None:
        self.plane.crash_recover()

    # -- invariants -----------------------------------------------------------
    @invariant()
    def fsck_clean(self) -> None:
        check_dataplane(self.plane).raise_if_dirty()

    @invariant()
    def written_blocks_match_model(self) -> None:
        for f in self.plane.files():
            assert f.written_blocks == len(self.files[f.name])

    def teardown(self) -> None:
        for f in list(self.plane.files()):
            self.plane.close_file(f)
            self.plane.delete_file(f)
        self.plane.crash_recover()  # drop any surviving reservations
        assert self.plane.fsm.free_blocks == self.initial_free


TestDataPlaneMachine = DataPlaneMachine.TestCase
TestDataPlaneMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
