"""SLO objectives: spec grammar, burn-rate evaluation, verdicts."""

from __future__ import annotations

import pickle

import pytest

from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    SLObjective,
    evaluate,
    parse_objective,
    resolve_objectives,
)
from repro.obs.timeseries import TimeSeries


def _series(values, window_s=1.0, name="data.latency_s"):
    """One sample per window, sample i in window i."""
    ts = TimeSeries(window_s=window_s)
    for i, v in enumerate(values):
        if v is not None:  # None = leave the window empty
            ts.observe(i * window_s + window_s / 2, name, v)
    return ts.snapshot()


class TestSpecGrammar:
    def test_minimal_spec(self):
        obj = parse_objective("data.latency_s:p99<=0.05")
        assert obj == SLObjective(
            series="data.latency_s", percentile=99.0, threshold=0.05
        )
        assert obj.window_s is None and obj.budget == 0.05

    def test_full_spec_with_options(self):
        obj = parse_objective("meta.latency_s:p99.9<=0.5:w2.5:b0.1")
        assert obj.series == "meta.latency_s"
        assert obj.percentile == 99.9
        assert obj.threshold == 0.5
        assert obj.window_s == 2.5
        assert obj.budget == 0.1

    def test_options_in_either_order(self):
        a = parse_objective("s:p50<=1:b0.2:w3")
        b = parse_objective("s:p50<=1:w3:b0.2")
        assert a == b

    def test_canonical_name_reparses_equal(self):
        for spec in ("data.latency_s:p99<=0.05",
                     "q:p50<=10:w0.5",
                     "x.y:p99.9<=1e-3:w2:b0.01"):
            obj = parse_objective(spec)
            assert parse_objective(obj.name) == obj

    @pytest.mark.parametrize("bad", [
        "nocolon",
        "series:99<=0.05",        # missing the p
        "series:p99<0.05",        # wrong comparator
        "series:p99<=0.05:x3",    # unknown option letter
        ":p99<=0.05",             # empty series
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError, match="SLO spec"):
            parse_objective(bad)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError, match="percentile"):
            SLObjective(series="s", percentile=0.0, threshold=1.0)
        with pytest.raises(ValueError, match="percentile"):
            SLObjective(series="s", percentile=101.0, threshold=1.0)
        with pytest.raises(ValueError, match="threshold"):
            SLObjective(series="s", percentile=99.0, threshold=-1.0)
        with pytest.raises(ValueError, match="window"):
            SLObjective(series="s", percentile=99.0, threshold=1.0, window_s=0.0)
        with pytest.raises(ValueError, match="budget"):
            SLObjective(series="s", percentile=99.0, threshold=1.0, budget=0.0)
        with pytest.raises(ValueError, match="invalid SLO spec"):
            parse_objective("s:p200<=1")


class TestResolve:
    def test_disabled_forms(self):
        assert resolve_objectives(None) is None
        assert resolve_objectives(False) is None

    def test_default_forms(self):
        expect = tuple(parse_objective(s) for s in DEFAULT_OBJECTIVES)
        assert resolve_objectives(True) == expect
        assert resolve_objectives("default") == expect

    def test_comma_separated_string(self):
        objs = resolve_objectives("a:p99<=1, b:p50<=2")
        assert [o.series for o in objs] == ["a", "b"]

    def test_iterable_mixes_specs_and_objectives(self):
        ready = SLObjective(series="x", percentile=50.0, threshold=3.0)
        objs = resolve_objectives(["a:p99<=1", ready])
        assert objs == (parse_objective("a:p99<=1"), ready)

    def test_single_objective_passthrough(self):
        ready = SLObjective(series="x", percentile=50.0, threshold=3.0)
        assert resolve_objectives(ready) == (ready,)

    def test_empty_specs_resolve_to_none(self):
        assert resolve_objectives("") is None
        assert resolve_objectives([]) is None


class TestEvaluate:
    def test_quiet_run_passes_with_zero_burn(self):
        ts = _series([0.01] * 10)
        report = evaluate(ts, ["data.latency_s:p99<=0.25"])
        (r,) = report.results
        assert r.windows == 10 and r.bad_windows == 0
        assert r.burn_rate == 0.0
        assert r.compliance == 1.0
        assert r.passed and r.verdict == "pass"
        assert report.passed and report.verdict == "pass"

    def test_violations_burn_the_budget(self):
        # 2 bad of 10 windows at a 10% budget: burn rate 2.0 -> fail.
        ts = _series([0.01] * 8 + [9.0, 9.0])
        report = evaluate(ts, ["data.latency_s:p99<=0.25:b0.1"])
        (r,) = report.results
        assert r.bad_windows == 2
        assert r.burn_rate == pytest.approx(2.0)
        assert not r.passed and report.verdict == "fail"
        assert r.worst >= 9.0  # log2 buckets round up, never down past max

    def test_burn_within_budget_passes(self):
        # 1 bad of 10 windows at a 10% budget: burn rate exactly 1.0.
        ts = _series([0.01] * 9 + [9.0])
        (r,) = evaluate(ts, ["data.latency_s:p99<=0.25:b0.1"]).results
        assert r.burn_rate == pytest.approx(1.0)
        assert r.passed

    def test_empty_windows_are_vacuously_compliant(self):
        ts = _series([0.01, None, None, 0.01])
        (r,) = evaluate(ts, ["data.latency_s:p99<=0.25"]).results
        assert r.windows == 2  # the two quiet windows are not counted

    def test_absent_series_yields_no_windows_and_passes(self):
        ts = _series([0.01] * 4)
        (r,) = evaluate(ts, ["ghost.latency_s:p99<=0.25"]).results
        assert r.windows == 0 and r.burn_rate == 0.0 and r.passed
        assert r.compliance == 1.0

    def test_compliance_window_merges_frames(self):
        """A w-spec wider than the telemetry window merges frames: one
        spike inside a 4-frame compliance window taints the whole group."""
        ts = _series([0.01, 0.01, 9.0, 0.01] + [0.01] * 4, window_s=1.0)
        tight = evaluate(ts, ["data.latency_s:p99<=0.25:b0.4"]).results[0]
        grouped = evaluate(ts, ["data.latency_s:p99<=0.25:w4:b0.4"]).results[0]
        assert tight.windows == 8 and tight.bad_windows == 1
        assert grouped.windows == 2 and grouped.bad_windows == 1
        assert grouped.burn_rate > tight.burn_rate

    def test_string_and_parsed_objectives_agree(self):
        ts = _series([0.01] * 5)
        a = evaluate(ts, ["data.latency_s:p99<=0.25"])
        b = evaluate(ts, [parse_objective("data.latency_s:p99<=0.25")])
        assert a == b

    def test_report_get_and_missing_series(self):
        ts = _series([0.01] * 3)
        report = evaluate(
            ts, ["data.latency_s:p99<=0.25", "ghost:p50<=1"]
        )
        assert report.get("data.latency_s").windows == 3
        with pytest.raises(KeyError, match="no objective"):
            report.get("nope")

    def test_overall_verdict_is_the_and(self):
        ts = _series([9.0] * 4)
        report = evaluate(
            ts,
            ["data.latency_s:p99<=100",   # passes
             "data.latency_s:p99<=0.01"]  # fails every window
        )
        assert report.results[0].passed
        assert not report.results[1].passed
        assert report.verdict == "fail"

    def test_to_dict_shapes(self):
        ts = _series([0.01] * 3)
        doc = evaluate(ts, ["data.latency_s:p99<=0.25:w1:b0.1"]).to_dict()
        assert doc["verdict"] == "pass"
        (obj,) = doc["objectives"]
        assert obj["series"] == "data.latency_s"
        assert obj["objective"] == "data.latency_s:p99<=0.25:w1:b0.1"
        assert {"windows", "bad_windows", "worst", "compliance",
                "burn_rate", "verdict"} <= set(obj)

    def test_report_is_picklable_and_comparable(self):
        ts = _series([0.01] * 6)
        report = evaluate(ts, ["data.latency_s:p99<=0.25"])
        assert pickle.loads(pickle.dumps(report)) == report
