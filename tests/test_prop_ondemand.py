"""Property-based tests for on-demand preallocation (§III).

Core invariants under arbitrary interleavings of stream writes:

1. **Exact coverage** — the returned runs back exactly the requested dlocal
   range, each block once.
2. **No double allocation** — no physical block is handed to two requests.
3. **Conservation** — free + handed out + reserved-in-windows == total.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.base import AllocTarget
from repro.alloc.ondemand import OnDemandPolicy
from repro.block.freespace import FreeSpaceManager
from repro.config import AllocPolicyParams


def make_policy(scale=2, threshold=3) -> OnDemandPolicy:
    fsm = FreeSpaceManager(ndisks=1, blocks_per_disk=16384, pags_per_disk=1)
    return OnDemandPolicy(
        AllocPolicyParams(
            policy="ondemand",
            window_scale=scale,
            miss_threshold=threshold,
            max_preallocation_blocks=128,
        ),
        fsm,
    )


TARGET = AllocTarget(group_index=0, slot=0, width=1, stripe_blocks=256)


@st.composite
def write_schedules(draw):
    """Per-stream sequential cursors, interleaved in random order; some
    streams also jump to random positions (mixed sequential/random)."""
    nstreams = draw(st.integers(min_value=1, max_value=4))
    ops = []
    cursors = {s: s * 2000 for s in range(nstreams)}
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        s = draw(st.integers(min_value=0, max_value=nstreams - 1))
        if draw(st.booleans()):
            count = draw(st.integers(min_value=1, max_value=8))
            ops.append((s, cursors[s], count))
            cursors[s] += count
        else:
            jump = draw(st.integers(min_value=0, max_value=15_000))
            count = draw(st.integers(min_value=1, max_value=4))
            ops.append((s, jump, count))
            # Sequential cursor unaffected: the jump models a stray write.
    return ops


@given(write_schedules())
@settings(max_examples=120, deadline=None)
def test_runs_cover_request_exactly_once(ops):
    policy = make_policy()
    file_id = 1
    claimed: dict[int, set[int]] = {}
    for stream, dlocal, count in ops:
        # Skip requests overlapping already-mapped dlocal (the file system
        # only asks the policy for holes).
        blocks = set(range(dlocal, dlocal + count))
        mapped = claimed.setdefault(stream, set())
        all_mapped = set().union(*claimed.values()) if claimed else set()
        if blocks & all_mapped:
            continue
        runs = policy.allocate(file_id, stream, TARGET, dlocal, count)
        got = sorted(
            b
            for r in runs
            if not r.unwritten
            for b in range(r.dlocal, r.dlocal + r.length)
        )
        assert got == sorted(blocks)
        mapped |= blocks
        for s2 in claimed:
            if s2 != stream:
                assert not (claimed[s2] & blocks)
        claimed[stream] = mapped


@given(write_schedules())
@settings(max_examples=120, deadline=None)
def test_no_physical_double_allocation_and_conservation(ops):
    policy = make_policy()
    fsm = policy.fsm
    total = fsm.free_blocks
    handed: set[int] = set()
    seen_dlocal: set[int] = set()
    for stream, dlocal, count in ops:
        blocks = set(range(dlocal, dlocal + count))
        if blocks & seen_dlocal:
            continue
        seen_dlocal |= blocks
        for r in policy.allocate(1, stream, TARGET, dlocal, count):
            phys = set(range(r.physical, r.physical + r.length))
            assert not phys & handed, "physical block handed out twice"
            handed |= phys
    # Everything not free is either handed to the file or parked in windows.
    released = policy.release(1)
    assert fsm.free_blocks == total - len(handed)


@given(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=16),
)
@settings(max_examples=60, deadline=None)
def test_pure_sequential_stream_is_contiguous(scale, threshold, writes):
    policy = make_policy(scale=scale, threshold=threshold)
    runs = []
    dlocal = 0
    for _ in range(writes):
        runs.extend(policy.allocate(1, 7, TARGET, dlocal, 4))
        dlocal += 4
    spans = sorted((r.physical, r.length) for r in runs)
    cursor = spans[0][0]
    for start, length in spans:
        assert start == cursor
        cursor = start + length
