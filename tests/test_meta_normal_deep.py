"""Deeper normal-layout behaviour: dentry hole reuse, inode placement
policy, mapping blocks, and lookup scan footprints."""

import pytest

from repro.config import DiskParams, MetaParams
from repro.meta.mfs import MetadataFS
from repro.meta.normal_layout import NormalLayout


def make_layout(**meta_kw) -> NormalLayout:
    params = MetaParams(
        layout="normal",
        block_groups=4,
        blocks_per_group=2048,
        inodes_per_group=256,
        journal_blocks=64,
        **meta_kw,
    )
    mfs = MetadataFS(params, DiskParams(capacity_blocks=16384))
    return NormalLayout(params, mfs)


class TestDentryManagement:
    def test_holes_from_deletes_are_reused(self):
        layout = make_layout()
        per_block = layout.dentries_per_block
        for i in range(per_block):
            layout.create_file(layout.root, f"f{i}", now=0.0)
        assert len(layout.root.dentry_blocks) == 1
        layout.delete_file(layout.root, "f3")
        layout.create_file(layout.root, "replacement", now=0.0)
        # The hole was reused: still one dentry block.
        assert len(layout.root.dentry_blocks) == 1
        assert layout.root.fill[0] == per_block

    def test_fill_tracks_entries(self):
        layout = make_layout()
        for i in range(10):
            layout.create_file(layout.root, f"f{i}", now=0.0)
        for i in range(0, 10, 2):
            layout.delete_file(layout.root, f"f{i}")
        assert sum(layout.root.fill) == len(layout.root.entries) == 5

    def test_dentry_blocks_allocated_in_home_group(self):
        layout = make_layout()
        d, _ = layout.create_dir(layout.root, "sub", now=0.0)
        per_block = layout.dentries_per_block
        for i in range(per_block * 3):
            layout.create_file(d, f"f{i}", now=0.0)
        mfs = layout.mfs
        for block in d.dentry_blocks:
            assert mfs.group_of_block(block) == d.group


class TestInodePlacement:
    def test_file_inodes_in_parent_group(self):
        layout = make_layout()
        d, _ = layout.create_dir(layout.root, "sub", now=0.0)
        inode, _ = layout.create_file(d, "f", now=0.0)
        group = inode.ino // layout.params.inodes_per_group
        assert group == d.group

    def test_directories_spread_by_rlov(self):
        layout = make_layout()
        groups = []
        for i in range(4):
            d, _ = layout.create_dir(layout.root, f"d{i}", now=0.0)
            groups.append(d.group)
        assert len(set(groups)) > 1  # rotated, not piled into one group

    def test_inode_numbers_are_stable_across_rename(self):
        layout = make_layout()
        inode, _ = layout.create_file(layout.root, "a", now=0.0)
        before = inode.ino
        layout.rename(layout.root, "a", layout.root, "b", now=1.0)
        after, _ = layout.stat(layout.root, "b")
        assert after.ino == before  # unlike the embedded layout


class TestMappingBlocks:
    def test_mapping_blocks_allocated_in_parent_group(self):
        layout = make_layout()
        d, _ = layout.create_dir(layout.root, "sub", now=0.0)
        layout.create_file(d, "f", now=0.0)
        layout.set_extent_records(d, "f", 10_000)
        inode, _ = layout.stat(d, "f")
        assert inode.spill_blocks
        for blk in inode.spill_blocks:
            assert layout.mfs.group_of_block(blk) == d.group

    def test_delete_releases_mapping_blocks(self):
        layout = make_layout()
        free0 = layout.mfs.free_data_blocks
        layout.create_file(layout.root, "f", now=0.0)
        layout.set_extent_records(layout.root, "f", 10_000)
        layout.delete_file(layout.root, "f")
        assert layout.mfs.free_data_blocks == free0


class TestLookupFootprints:
    def test_linear_scan_reads_prefix_only(self):
        layout = make_layout(htree_index=False)
        per_block = layout.dentries_per_block
        for i in range(per_block * 3):
            layout.create_file(layout.root, f"f{i:05d}", now=0.0)
        # A name in the first block reads one block; in the third, three.
        _, plan_first = layout.stat(layout.root, "f00000")
        _, plan_last = layout.stat(layout.root, f"f{per_block * 3 - 1:05d}")
        # stat appends one inode-block read on top of the scan.
        assert len(plan_first.reads) == 1 + 1
        assert len(plan_last.reads) == 3 + 1

    def test_absent_name_scans_everything(self):
        layout = make_layout(htree_index=False)
        per_block = layout.dentries_per_block
        for i in range(per_block * 2):
            layout.create_file(layout.root, f"f{i:05d}", now=0.0)
        from repro.errors import FileNotFound
        with pytest.raises(FileNotFound):
            layout.stat(layout.root, "missing")

    def test_readdir_reads_every_dentry_block(self):
        layout = make_layout()
        per_block = layout.dentries_per_block
        for i in range(per_block * 2 + 1):
            layout.create_file(layout.root, f"f{i:05d}", now=0.0)
        _, plan = layout.readdir(layout.root)
        assert len(plan.reads) == 3
