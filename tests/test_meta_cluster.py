"""MDS cluster: subtree vs hash-path distribution, sharded directories."""

import pytest

from repro.errors import ConfigError, FileNotFound
from repro.meta.cluster import MDSCluster

from tests.conftest import small_config


def make_cluster(distribution="subtree", nservers=4, layout="embedded", **kw):
    return MDSCluster(
        small_config(layout=layout), nservers=nservers, distribution=distribution, **kw
    )


class TestBasics:
    def test_validation(self):
        with pytest.raises(ConfigError):
            make_cluster(nservers=0)
        with pytest.raises(ConfigError):
            make_cluster(distribution="round-robin")

    def test_namespace_roundtrip_both_distributions(self):
        for dist in ("subtree", "hash-path"):
            cluster = make_cluster(dist)
            d = cluster.mkdir("proj")
            for i in range(20):
                cluster.create(d, f"f{i}")
            inode = cluster.stat(d, "f3")
            assert inode.name == "f3"
            inodes = cluster.readdir_stat(d)
            assert {i.name for i in inodes} == {f"f{i}" for i in range(20)}
            cluster.delete(d, "f3")
            assert {i.name for i in cluster.readdir_stat(d)} == {
                f"f{i}" for i in range(20) if i != 3
            }

    def test_duplicate_dir_rejected(self):
        cluster = make_cluster()
        cluster.mkdir("d")
        with pytest.raises(ConfigError):
            cluster.mkdir("d")


class TestDistributionLocality:
    def test_subtree_keeps_directory_on_one_server(self):
        cluster = make_cluster("subtree")
        d = cluster.mkdir("proj")
        for i in range(30):
            cluster.create(d, f"f{i}")
        busy = [s.ops for s in cluster.servers]
        assert sum(1 for b in busy if b > 0) == 1

    def test_hash_path_spreads_inodes(self):
        cluster = make_cluster("hash-path")
        d = cluster.mkdir("proj")
        for i in range(30):
            cluster.create(d, f"f{i}")
        busy = [s.ops for s in cluster.servers]
        assert sum(1 for b in busy if b > 0) > 1

    def test_embedded_gain_vanishes_under_hash_path(self):
        """§IV.D: hashed distribution sacrifices the locality embedded
        directories exploit — measured as the per-directory disk footprint
        of an aggregated ls -l."""

        def rdstat_requests(layout: str, dist: str) -> int:
            cluster = make_cluster(dist, layout=layout)
            d = cluster.mkdir("proj")
            for i in range(512):
                cluster.create(d, f"f{i:04d}")
            cluster.flush()
            cluster.drop_caches()
            before = sum(
                s.metrics.count("disk.requests") for s in cluster.servers
            )
            cluster.readdir_stat(d)
            return (
                sum(s.metrics.count("disk.requests") for s in cluster.servers)
                - before
            )

        # Subtree: embedded reads far fewer blocks than normal.
        subtree_ratio = rdstat_requests("embedded", "subtree") / rdstat_requests(
            "normal", "subtree"
        )
        # Hash-path: entries scatter over 4 servers; the relative embedded
        # saving shrinks (each server only holds a fragment).
        hash_ratio = rdstat_requests("embedded", "hash-path") / rdstat_requests(
            "normal", "hash-path"
        )
        assert subtree_ratio < 1.0
        assert hash_ratio > subtree_ratio


class TestShardedDirectories:
    def test_sharded_create_and_stat(self):
        cluster = make_cluster("subtree")
        d = cluster.mkdir("giant", sharded=True)
        for i in range(64):
            cluster.create(d, f"p{i:05d}")
        assert cluster.stat(d, "p00042").name == "p00042"
        assert len(cluster.readdir_stat(d)) == 64

    def test_shards_balance_across_servers(self):
        cluster = make_cluster("subtree")
        d = cluster.mkdir("giant", sharded=True)
        for i in range(200):
            cluster.create(d, f"p{i:05d}")
        counts = [s.metrics.count("mds.op.create") for s in cluster.servers]
        assert min(counts) > 0  # every server holds a shard's worth

    def test_hash_collection_avoids_broadcast(self):
        """§IV.C: the primary's name-hash collection answers lookups with
        one RPC; without it the cluster probes every shard."""
        with_index = make_cluster("subtree", hash_collection=True)
        without = make_cluster("subtree", hash_collection=False)
        for cluster in (with_index, without):
            d = cluster.mkdir("giant", sharded=True)
            for i in range(64):
                cluster.create(d, f"p{i:05d}")
            cluster.metrics.reset()
            for i in range(0, 64, 7):
                cluster.stat(d, f"p{i:05d}")
        assert with_index.rpcs() < without.rpcs()

    def test_missing_name_raises_in_both_modes(self):
        for hc in (True, False):
            cluster = make_cluster("subtree", hash_collection=hc)
            d = cluster.mkdir("giant", sharded=True)
            cluster.create(d, "exists")
            with pytest.raises(FileNotFound):
                cluster.stat(d, "missing")


class TestParallelTimelines:
    def test_makespan_is_max_not_sum(self):
        cluster = make_cluster("subtree", nservers=2)
        d1 = cluster.mkdir("a")
        d2 = cluster.mkdir("bb")  # hashes elsewhere with high probability
        for i in range(50):
            cluster.create(d1, f"f{i}")
            cluster.create(d2, f"f{i}")
        assert cluster.makespan_s <= cluster.total_busy_s
        assert cluster.makespan_s == max(s.elapsed_s for s in cluster.servers)
