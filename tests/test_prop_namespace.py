"""Stateful property test: both directory layouts against a dict model.

Random creates/deletes/renames/utimes across a small directory tree must
keep each layout's namespace identical to a plain dictionary model, and
the MDS fsck must stay clean throughout.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.errors import FileExists, FileNotFound
from repro.fs.verify import check_mds
from repro.meta.mds import MetadataServer

from tests.conftest import small_config

_NAMES = [f"n{i}" for i in range(12)]


class _NamespaceMachine(RuleBasedStateMachine):
    layout = "embedded"

    def __init__(self) -> None:
        super().__init__()
        self.mds = MetadataServer(small_config(layout=self.layout))
        self.dirs = {"root": self.mds.root, "a": None, "b": None}
        self.dirs["a"] = self.mds.mkdir(self.mds.root, "a")
        self.dirs["b"] = self.mds.mkdir(self.mds.root, "b")
        # model: dirkey -> set of names
        self.model: dict[str, set[str]] = {"root": set(), "a": set(), "b": set()}

    @rule(d=st.sampled_from(["root", "a", "b"]), name=st.sampled_from(_NAMES))
    def create(self, d: str, name: str) -> None:
        if name in self.model[d] or (d == "root" and name in ("a", "b")):
            with pytest.raises(FileExists):
                self.mds.create(self.dirs[d], name)
            return
        # 'a'/'b' live in root as directories; avoid name collisions there.
        self.mds.create(self.dirs[d], name)
        self.model[d].add(name)

    @rule(d=st.sampled_from(["root", "a", "b"]), name=st.sampled_from(_NAMES))
    def delete(self, d: str, name: str) -> None:
        if name not in self.model[d]:
            with pytest.raises(FileNotFound):
                self.mds.delete(self.dirs[d], name)
            return
        self.mds.delete(self.dirs[d], name)
        self.model[d].discard(name)

    @rule(d=st.sampled_from(["root", "a", "b"]), name=st.sampled_from(_NAMES))
    def utime(self, d: str, name: str) -> None:
        if name not in self.model[d]:
            with pytest.raises(FileNotFound):
                self.mds.utime(self.dirs[d], name)
            return
        before = self.mds.stat(self.dirs[d], name).mtime
        self.mds.utime(self.dirs[d], name)
        assert self.mds.stat(self.dirs[d], name).mtime >= before

    @rule(
        src=st.sampled_from(["root", "a", "b"]),
        dst=st.sampled_from(["root", "a", "b"]),
        name=st.sampled_from(_NAMES),
        newname=st.sampled_from(_NAMES),
    )
    def rename(self, src: str, dst: str, name: str, newname: str) -> None:
        ok = (
            name in self.model[src]
            and newname not in self.model[dst]
            and not (dst == "root" and newname in ("a", "b"))
            and not (src == dst and name == newname)
        )
        if not ok:
            return
        self.mds.rename(self.dirs[src], name, self.dirs[dst], newname)
        self.model[src].discard(name)
        self.model[dst].add(newname)

    @rule()
    def checkpoint_and_drop_caches(self) -> None:
        self.mds.flush()
        self.mds.drop_caches()

    @invariant()
    def namespace_matches_model(self) -> None:
        for d, names in self.model.items():
            listed = set(self.mds.readdir(self.dirs[d]))
            if d == "root":
                listed -= {"a", "b"}
            assert listed == names

    @invariant()
    def readdir_stat_consistent(self) -> None:
        for d, names in self.model.items():
            inodes = {
                i.name
                for i in self.mds.readdir_stat(self.dirs[d])
                if not i.is_dir
            }
            assert inodes == names

    @invariant()
    def fsck_clean(self) -> None:
        check_mds(self.mds).raise_if_dirty()


class EmbeddedNamespaceMachine(_NamespaceMachine):
    layout = "embedded"


class NormalNamespaceMachine(_NamespaceMachine):
    layout = "normal"


TestEmbeddedNamespace = EmbeddedNamespaceMachine.TestCase
TestEmbeddedNamespace.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
TestNormalNamespace = NormalNamespaceMachine.TestCase
TestNormalNamespace.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
