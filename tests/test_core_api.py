"""High-level API: build_filesystem, compare_policies, fragmentation report,
and structural behaviour of the experiment result types."""

import pytest

from repro.core.api import (
    PROFILES,
    build_filesystem,
    compare_policies,
    fragmentation_report,
)
from repro.core.runners import (
    Fig6aResult,
    Fig7Result,
    MacroRun,
    prealloc_waste,
)
from repro.errors import ConfigError
from repro.fs.dataplane import DataPlane
from repro.units import KiB

from tests.conftest import small_config


class TestBuildFilesystem:
    def test_profiles_exposed(self):
        assert set(PROFILES) == {"redbud-orig", "lustre", "redbud-mif"}

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_build_each_profile(self, profile):
        fs = build_filesystem(profile)
        fs.create("/x")
        assert fs.exists("/x")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            build_filesystem("zfs")

    def test_overrides_forwarded(self):
        fs = build_filesystem("redbud-mif", ndisks=3)
        assert fs.config.ndisks == 3


class TestComparePolicies:
    @pytest.fixture(scope="class")
    def report(self):
        return compare_policies(
            policies=("reservation", "ondemand"),
            nstreams=8,
            file_mib=16,
            ndisks=2,
        )

    def test_all_policies_present(self, report):
        assert {r.policy for r in report.results} == {"reservation", "ondemand"}

    def test_get_and_best(self, report):
        assert report.get("ondemand").policy == "ondemand"
        assert report.best_read() in report.results
        with pytest.raises(KeyError):
            report.get("zfs")

    def test_extent_ordering(self, report):
        assert report.get("ondemand").extents < report.get("reservation").extents

    def test_validation(self):
        with pytest.raises(ConfigError):
            compare_policies(file_mib=0)


class TestFragmentationReport:
    def test_report_contains_sections(self):
        plane = DataPlane(small_config())
        f = plane.create_file("/f")
        for i in range(8):
            plane.write(f, 1, i * 64 * KiB, 64 * KiB)
        out = fragmentation_report(plane, f)
        assert "extents" in out
        assert "slot 0 layout" in out
        assert f.name in out


class TestResultTypes:
    def test_fig6a_improvement(self):
        r = Fig6aResult(
            stream_counts=[32],
            throughput={"reservation": {32: 100.0}, "ondemand": {32: 120.0}},
            extents={"reservation": {32: 10}, "ondemand": {32: 2}},
        )
        assert r.improvement_over("reservation", "ondemand", 32) == pytest.approx(0.2)

    def test_fig7_get_raises_on_missing(self):
        r = Fig7Result(
            runs=[MacroRun("IOR", "ondemand", False, 1.0, 10, 0.5)]
        )
        assert r.get("IOR", "ondemand", False).extents == 10
        with pytest.raises(KeyError):
            r.get("IOR", "ondemand", True)

    def test_prealloc_waste_properties(self):
        w = prealloc_waste(nfiles=100, seed=0)
        assert w.occupied_large > w.occupied_small
        assert w.waste_ratio > 1.0
