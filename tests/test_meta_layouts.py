"""Directory layouts: operation footprints of normal vs embedded (§IV)."""

import pytest

from repro.config import DiskParams, MetaParams
from repro.errors import FileExists, FileNotFound, IsADirectory
from repro.meta.embedded_layout import EmbeddedLayout
from repro.meta.inumber import decode_ino
from repro.meta.mfs import MetadataFS
from repro.meta.normal_layout import NormalLayout


def make_layout(kind: str, **meta_kw):
    params = MetaParams(
        layout=kind,
        block_groups=4,
        blocks_per_group=2048,
        inodes_per_group=256,
        journal_blocks=64,
        dir_prealloc_blocks=2,
        lazy_free_batch=4,
        **meta_kw,
    )
    mfs = MetadataFS(params, DiskParams(capacity_blocks=16384))
    cls = NormalLayout if kind == "normal" else EmbeddedLayout
    return cls(params, mfs)


@pytest.fixture(params=["normal", "embedded"])
def layout(request):
    return make_layout(request.param)


class TestCommonSemantics:
    """Both layouts implement identical namespace semantics."""

    def test_create_and_stat(self, layout):
        d, _ = layout.create_dir(layout.root, "d", now=1.0)
        inode, _ = layout.create_file(d, "f", now=2.0)
        got, plan = layout.stat(d, "f")
        assert got is inode
        assert got.mtime == 2.0
        assert plan.journal_records == 0  # stat does not journal

    def test_duplicate_create_rejected(self, layout):
        layout.create_file(layout.root, "f", now=0.0)
        with pytest.raises(FileExists):
            layout.create_file(layout.root, "f", now=0.0)

    def test_missing_file_rejected(self, layout):
        with pytest.raises(FileNotFound):
            layout.stat(layout.root, "ghost")
        with pytest.raises(FileNotFound):
            layout.delete_file(layout.root, "ghost")

    def test_delete_directory_via_file_op_rejected(self, layout):
        layout.create_dir(layout.root, "d", now=0.0)
        with pytest.raises(IsADirectory):
            layout.delete_file(layout.root, "d")

    def test_delete_removes_entry(self, layout):
        layout.create_file(layout.root, "f", now=0.0)
        layout.delete_file(layout.root, "f")
        with pytest.raises(FileNotFound):
            layout.stat(layout.root, "f")

    def test_readdir_lists_everything(self, layout):
        names = {f"f{i}" for i in range(40)}
        for n in names:
            layout.create_file(layout.root, n, now=0.0)
        listed, _ = layout.readdir(layout.root)
        assert set(listed) == names

    def test_readdir_stat_returns_inodes(self, layout):
        for i in range(10):
            layout.create_file(layout.root, f"f{i}", now=float(i))
        inodes, plan = layout.readdir_stat(layout.root)
        assert len(inodes) == 10
        assert plan.read_block_count() >= 1

    def test_utime_touches(self, layout):
        layout.create_file(layout.root, "f", now=1.0)
        layout.utime(layout.root, "f", now=9.0)
        inode, _ = layout.stat(layout.root, "f")
        assert inode.mtime == 9.0

    def test_rename_within_dir(self, layout):
        layout.create_file(layout.root, "a", now=0.0)
        layout.rename(layout.root, "a", layout.root, "b", now=1.0)
        with pytest.raises(FileNotFound):
            layout.stat(layout.root, "a")
        inode, _ = layout.stat(layout.root, "b")
        assert inode.name == "b"

    def test_rename_across_dirs(self, layout):
        d1, _ = layout.create_dir(layout.root, "d1", now=0.0)
        d2, _ = layout.create_dir(layout.root, "d2", now=0.0)
        layout.create_file(d1, "f", now=0.0)
        layout.rename(d1, "f", d2, "f2", now=1.0)
        inode, _ = layout.stat(d2, "f2")
        assert inode.name == "f2"

    def test_rename_to_existing_rejected(self, layout):
        layout.create_file(layout.root, "a", now=0.0)
        layout.create_file(layout.root, "b", now=0.0)
        with pytest.raises(FileExists):
            layout.rename(layout.root, "a", layout.root, "b", now=1.0)

    def test_getlayout_reads_mapping(self, layout):
        layout.create_file(layout.root, "f", now=0.0)
        layout.set_extent_records(layout.root, "f", 3)
        inode, plan = layout.getlayout(layout.root, "f")
        assert inode.extent_records == 3
        assert plan.read_block_count() >= 1

    def test_mapping_spills_beyond_inode_tail(self, layout):
        layout.create_file(layout.root, "f", now=0.0)
        tail = layout.params.inode_tail_extents
        layout.set_extent_records(layout.root, "f", tail + 1)
        inode, _ = layout.stat(layout.root, "f")
        assert len(inode.spill_blocks) == 1
        layout.set_extent_records(layout.root, "f", tail)
        inode, _ = layout.stat(layout.root, "f")
        assert inode.spill_blocks == []


class TestNormalFootprints:
    def test_create_dirties_bitmap_table_and_dentry(self):
        layout = make_layout("normal")
        _, plan = layout.create_file(layout.root, "f", now=0.0)
        mfs = layout.mfs
        root = layout.root
        assert mfs.inode_bitmap_block(root.group) in plan.dirties
        assert root.dentry_blocks[0] in plan.dirties
        # Inode lands in the parent's group's table.
        itable = range(mfs.itable_base(root.group), mfs.data_base(root.group))
        assert any(b in itable for b in plan.dirties)

    def test_readdir_stat_alternates_regions(self):
        layout = make_layout("normal")
        for i in range(20):
            layout.create_file(layout.root, f"f{i}", now=0.0)
        _, plan = layout.readdir_stat(layout.root)
        reads = [b for b, _ in plan.reads]
        dentry = set(layout.root.dentry_blocks)
        kinds = ["d" if b in dentry else "i" for b in reads]
        assert "d" in kinds and "i" in kinds
        assert kinds[0] == "d"  # dentry block first, then its inodes

    def test_htree_lookup_reads_single_block(self):
        lin = make_layout("normal", htree_index=False)
        ht = make_layout("normal", htree_index=True)
        for layout in (lin, ht):
            for i in range(200):
                layout.create_file(layout.root, f"f{i}", now=0.0)
        _, plan_lin = lin.stat(lin.root, "f199")  # deep in the scan order
        _, plan_ht = ht.stat(ht.root, "f199")
        assert len(plan_ht.reads) <= len(plan_lin.reads)
        assert plan_ht.cpu_s < plan_lin.cpu_s

    def test_delete_frees_inode(self):
        layout = make_layout("normal")
        inode, _ = layout.create_file(layout.root, "f", now=0.0)
        plan = layout.delete_file(layout.root, "f")
        assert layout.mfs.inode_bitmap_block(layout.root.group) in plan.dirties
        ino2, _ = layout.create_file(layout.root, "g", now=0.0)
        assert ino2.ino == inode.ino  # slot reused

    def test_dentry_block_growth(self):
        layout = make_layout("normal")
        per_block = layout.dentries_per_block
        for i in range(per_block + 1):
            layout.create_file(layout.root, f"f{i}", now=0.0)
        assert len(layout.root.dentry_blocks) == 2


class TestEmbeddedFootprints:
    def test_create_never_touches_inode_bitmap_or_table(self):
        layout = make_layout("embedded")
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        _, plan = layout.create_file(d, "f", now=0.0)
        mfs = layout.mfs
        for g in range(mfs.group_count):
            assert mfs.inode_bitmap_block(g) not in plan.dirties
            itable = range(mfs.itable_base(g), mfs.data_base(g))
            assert not any(b in itable for b in plan.dirties)

    def test_inode_number_encodes_parent(self):
        layout = make_layout("embedded")
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        inode, _ = layout.create_file(d, "f", now=0.0)
        dir_id, offset = decode_ino(inode.ino)
        assert dir_id == d.dir_id

    def test_inode_lives_in_directory_content(self):
        layout = make_layout("embedded")
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        inode, _ = layout.create_file(d, "f", now=0.0)
        runs = d.content_runs
        assert any(s <= inode.home_block < s + c for s, c in runs)

    def test_content_preallocation_scales(self):
        layout = make_layout("embedded")
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        per_block = layout.slots_per_block
        initial_blocks = d.content_blocks
        for i in range(per_block * initial_blocks + 1):
            layout.create_file(d, f"f{i}", now=0.0)
        # §IV.A: preallocation scaled (doubled with scale=2).
        assert d.content_blocks >= 2 * initial_blocks

    def test_readdir_stat_is_one_content_sweep(self):
        layout = make_layout("embedded")
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        for i in range(40):
            layout.create_file(d, f"f{i}", now=0.0)
        _, plan = layout.readdir_stat(d)
        content = {
            b for s, c in d.content_runs for b in range(s, s + c)
        }
        assert all(b in content for b, _ in plan.reads)

    def test_lazy_free_batches(self):
        layout = make_layout("embedded")  # lazy_free_batch=4
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        for i in range(8):
            layout.create_file(d, f"f{i}", now=0.0)
        for i in range(3):
            layout.delete_file(d, f"f{i}")
        assert len(d.pending_free) == 3
        assert d.free_offsets == []
        layout.delete_file(d, "f3")  # 4th hits the batch
        assert d.pending_free == []
        assert len(d.free_offsets) == 4

    def test_slots_reused_after_lazy_free(self):
        layout = make_layout("embedded")
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        for i in range(4):
            layout.create_file(d, f"f{i}", now=0.0)
        for i in range(4):
            layout.delete_file(d, f"f{i}")
        before = d.next_offset
        layout.create_file(d, "new", now=0.0)
        assert d.next_offset == before  # reused a freed slot

    def test_fragmented_dir_preallocates_spill_at_create(self):
        layout = make_layout("embedded", frag_degree_threshold=2.0)
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        layout.create_file(d, "a", now=0.0)
        layout.set_extent_records(d, "a", 50)  # degree = 50 > 2
        inode, _ = layout.create_file(d, "b", now=0.0)
        assert len(inode.spill_blocks) >= 1

    def test_rename_changes_ino_and_correlates(self):
        layout = make_layout("embedded")
        d1, _ = layout.create_dir(layout.root, "d1", now=0.0)
        d2, _ = layout.create_dir(layout.root, "d2", now=0.0)
        inode, _ = layout.create_file(d1, "f", now=0.0)
        old_ino = inode.ino
        layout.rename(d1, "f", d2, "f", now=1.0)
        new_inode, _ = layout.stat(d2, "f")
        assert new_inode.ino != old_ino
        # §IV.B: changes routed through the old id reach the new inode.
        assert layout.gdt.resolve(old_ino) == new_inode.ino
        located, chain = layout.locate_inode(old_ino)
        assert located is new_inode
        assert chain[0] == d2.ino

    def test_locate_inode_tracks_back_to_root(self):
        layout = make_layout("embedded")
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        sub, _ = layout.create_dir(d, "sub", now=0.0)
        inode, _ = layout.create_file(sub, "f", now=0.0)
        located, chain = layout.locate_inode(inode.ino)
        assert located is inode
        assert chain == [sub.ino, d.ino, layout.root.ino]

    def test_renamed_directory_keeps_working(self):
        layout = make_layout("embedded")
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        layout.create_file(d, "f", now=0.0)
        layout.rename(layout.root, "d", layout.root, "d2", now=1.0)
        # Children still resolve through the (re-pointed) directory table.
        inode, _ = layout.stat(d, "f")
        located, _ = layout.locate_inode(inode.ino)
        assert located is inode
