"""Block bitmap: range set/clear, run finding, dirty-block reporting."""

import numpy as np
import pytest

from repro.block.bitmap import BlockBitmap
from repro.errors import AllocationError, NoSpaceError


@pytest.fixture
def bm() -> BlockBitmap:
    return BlockBitmap(size=1024, bits_per_block=256)


class TestRanges:
    def test_initially_free(self, bm):
        assert bm.free_count == 1024
        assert bm.is_range_free(0, 1024)

    def test_set_and_clear(self, bm):
        bm.set_range(10, 5)
        assert bm.used_count == 5
        assert bm.is_used(10)
        assert not bm.is_used(15)
        bm.clear_range(10, 5)
        assert bm.used_count == 0

    def test_double_set_rejected(self, bm):
        bm.set_range(0, 4)
        with pytest.raises(AllocationError):
            bm.set_range(3, 2)

    def test_double_clear_rejected(self, bm):
        with pytest.raises(AllocationError):
            bm.clear_range(0, 1)

    def test_out_of_range_rejected(self, bm):
        with pytest.raises(AllocationError):
            bm.set_range(1020, 10)


class TestDirtyBlocks:
    def test_single_bitmap_block(self, bm):
        assert bm.set_range(0, 10) == [0]

    def test_straddles_bitmap_blocks(self, bm):
        assert bm.set_range(250, 10) == [0, 1]

    def test_bitmap_block_of(self, bm):
        assert bm.bitmap_block_of(0) == 0
        assert bm.bitmap_block_of(255) == 0
        assert bm.bitmap_block_of(256) == 1


class TestFindFreeRun:
    def test_finds_from_hint(self, bm):
        assert bm.find_free_run(4, hint=100) == 100

    def test_skips_used(self, bm):
        bm.set_range(100, 10)
        assert bm.find_free_run(4, hint=100) == 110

    def test_wraps_around(self, bm):
        bm.set_range(512, 512)
        assert bm.find_free_run(4, hint=600) == 0

    def test_exact_fit(self, bm):
        bm.set_range(0, 1020)
        assert bm.find_free_run(4, hint=0) == 1020

    def test_no_space(self, bm):
        bm.set_range(0, 1024)
        with pytest.raises(NoSpaceError):
            bm.find_free_run(1)

    def test_run_straddling_scan_chunks(self):
        # A run that spans the chunk boundary must still be found.
        bm = BlockBitmap(size=3 * BlockBitmap._SCAN_CHUNK)
        hole_start = BlockBitmap._SCAN_CHUNK - 8
        bm.set_range(0, hole_start)
        bm.set_range(hole_start + 16, bm.size - hole_start - 16)
        assert bm.find_free_run(16, hint=0) == hole_start

    def test_rotor_advances_after_allocation(self, bm):
        start = bm.find_free_run(4)
        bm.set_range(start, 4)
        assert bm.find_free_run(4) == start + 4


class TestLoadMask:
    def test_load_pattern(self, bm):
        mask = np.zeros(1024, dtype=bool)
        mask[::2] = True
        bm.load_mask(mask)
        assert bm.used_count == 512
        assert bm.is_used(0)
        assert not bm.is_used(1)

    def test_requires_empty(self, bm):
        bm.set_range(0, 1)
        with pytest.raises(AllocationError):
            bm.load_mask(np.zeros(1024, dtype=bool))

    def test_requires_matching_shape(self, bm):
        with pytest.raises(AllocationError):
            bm.load_mask(np.zeros(10, dtype=bool))
