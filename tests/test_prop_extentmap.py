"""Property-based tests for the extent map.

Invariants: sorted/non-overlapping/merged structure; lookup agrees with a
brute-force dict model; remove+holes partition the logical space.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.extent import Extent, ExtentFlags, ExtentMap
from repro.errors import ExtentError

LOGICAL_SPACE = 256


@st.composite
def extent_batches(draw):
    """Non-overlapping logical extents with arbitrary physical placement."""
    n = draw(st.integers(min_value=1, max_value=12))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=LOGICAL_SPACE),
                min_size=2 * n,
                max_size=2 * n,
                unique=True,
            )
        )
    )
    extents = []
    for i in range(0, len(cuts) - 1, 2):
        logical, end = cuts[i], cuts[i + 1]
        if end <= logical:
            continue
        physical = draw(st.integers(min_value=0, max_value=10_000))
        unwritten = draw(st.booleans())
        extents.append(
            Extent(
                logical,
                physical,
                end - logical,
                ExtentFlags.UNWRITTEN if unwritten else ExtentFlags.NONE,
            )
        )
    return extents


@given(extent_batches())
@settings(max_examples=200)
def test_insert_preserves_structure_and_content(extents):
    m = ExtentMap()
    model: dict[int, int] = {}
    for e in extents:
        m.insert(e)
        for b in range(e.logical, e.logical_end):
            model[b] = e.physical_for(b)
    m.validate()
    assert m.mapped_blocks == len(model)
    for b, phys in model.items():
        ext = m.lookup_block(b)
        assert ext is not None
        assert ext.physical_for(b) == phys
    # Holes are exactly the unmapped blocks.
    holes = m.holes_in_range(0, LOGICAL_SPACE)
    hole_blocks = {b for s, c in holes for b in range(s, s + c)}
    assert hole_blocks == set(range(LOGICAL_SPACE)) - set(model)


@given(extent_batches(), st.integers(0, LOGICAL_SPACE - 1), st.integers(1, 64))
@settings(max_examples=200)
def test_remove_range_partitions(extents, start, count):
    m = ExtentMap()
    for e in extents:
        m.insert(e)
    before = m.mapped_blocks
    removed = m.remove_range(start, count)
    m.validate()
    removed_blocks = sum(e.length for e in removed)
    assert m.mapped_blocks == before - removed_blocks
    assert m.lookup_range(start, count) == []


@given(extent_batches(), st.integers(0, LOGICAL_SPACE - 1), st.integers(1, 64))
@settings(max_examples=200)
def test_mark_written_is_idempotent_and_flag_only(extents, start, count):
    m = ExtentMap()
    for e in extents:
        m.insert(e)
    mapping_before = {
        b: m.lookup_block(b).physical_for(b)
        for e in m.extents()
        for b in range(e.logical, e.logical_end)
    }
    m.mark_written(start, count)
    m.validate()
    once = [(e.logical, e.physical, e.length, e.flags) for e in m.extents()]
    m.mark_written(start, count)
    twice = [(e.logical, e.physical, e.length, e.flags) for e in m.extents()]
    assert once == twice
    # Physical mapping is untouched; only flags may change.
    for b, phys in mapping_before.items():
        assert m.lookup_block(b).physical_for(b) == phys
    for e in m.lookup_range(start, count):
        assert not e.unwritten


@given(extent_batches())
@settings(max_examples=100)
def test_reinserting_any_mapped_block_raises(extents):
    m = ExtentMap()
    for e in extents:
        m.insert(e)
    for e in m.extents()[:3]:
        try:
            m.insert(Extent(e.logical, 99_999, 1))
        except ExtentError:
            continue
        raise AssertionError("overlap accepted")
