"""On-demand preallocation: windows, triggers, miss cut-off, ramping (§III)."""

import pytest

from repro.alloc.base import AllocTarget
from repro.alloc.ondemand import OnDemandPolicy
from repro.block.freespace import FreeSpaceManager
from repro.config import AllocPolicyParams


def make_policy(**params) -> OnDemandPolicy:
    fsm = FreeSpaceManager(ndisks=1, blocks_per_disk=65536, pags_per_disk=1)
    defaults = dict(policy="ondemand", window_scale=2, miss_threshold=3)
    defaults.update(params)
    return OnDemandPolicy(AllocPolicyParams(**defaults), fsm)


def target() -> AllocTarget:
    return AllocTarget(group_index=0, slot=0, width=1, stripe_blocks=256)


FILE = 1


class TestSequentialStream:
    def test_first_extend_initializes_sequential_window(self):
        p = make_policy()
        p.allocate(FILE, 7, target(), dlocal=0, count=4)
        st = p.stream_state(FILE, 7, 0)
        assert st is not None
        assert st.sequential is not None
        # §III.C: window = write size * scale.
        assert st.sequential.length == 8
        assert st.sequential.logical == 4

    def test_sequential_write_hits_window_and_promotes(self):
        p = make_policy()
        p.allocate(FILE, 7, target(), dlocal=0, count=4)
        p.allocate(FILE, 7, target(), dlocal=4, count=4)
        assert p.metrics.count("alloc.trigger_prealloc_layout") == 1
        assert p.metrics.count("alloc.promotions") == 1
        st = p.stream_state(FILE, 7, 0)
        assert st.current is not None  # the promoted window
        assert st.sequential is not None  # the new, ramped window

    def test_window_ramps_exponentially(self):
        p = make_policy(window_scale=2)
        sizes = []
        dlocal = 0
        for _ in range(6):
            p.allocate(FILE, 7, target(), dlocal=dlocal, count=4)
            dlocal += 4
            st = p.stream_state(FILE, 7, 0)
            if st.sequential is not None:
                sizes.append(st.sequential.length)
        # 8 -> 16 -> 32 ... strictly growing until cap.
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_window_capped_at_max(self):
        p = make_policy(max_preallocation_blocks=16)
        dlocal = 0
        for _ in range(10):
            p.allocate(FILE, 7, target(), dlocal=dlocal, count=8)
            dlocal += 8
        st = p.stream_state(FILE, 7, 0)
        assert st.window_size <= 16

    def test_sequential_stream_placement_is_contiguous(self):
        p = make_policy()
        runs = []
        dlocal = 0
        for _ in range(32):
            runs.extend(p.allocate(FILE, 7, target(), dlocal=dlocal, count=4))
            dlocal += 4
        phys = sorted((r.physical, r.length) for r in runs)
        # All 128 blocks must form one contiguous physical range.
        cursor = phys[0][0]
        for start, length in phys:
            assert start == cursor
            cursor = start + length

    def test_scale_four_ramps_faster(self):
        p2 = make_policy(window_scale=2)
        p4 = make_policy(window_scale=4)
        for p in (p2, p4):
            dlocal = 0
            for _ in range(4):
                p.allocate(FILE, 7, target(), dlocal=dlocal, count=4)
                dlocal += 4
        s2 = p2.stream_state(FILE, 7, 0).window_size
        s4 = p4.stream_state(FILE, 7, 0).window_size
        assert s4 > s2


class TestConcurrentStreams:
    def test_streams_do_not_share_windows(self):
        p = make_policy()
        p.allocate(FILE, 1, target(), dlocal=0, count=4)
        p.allocate(FILE, 2, target(), dlocal=1000, count=4)
        st1 = p.stream_state(FILE, 1, 0)
        st2 = p.stream_state(FILE, 2, 0)
        assert st1.sequential.physical != st2.sequential.physical

    def test_per_stream_regions_stay_contiguous_under_interleave(self):
        """The paper's headline property: concurrent streams' regions each
        stay physically contiguous."""
        p = make_policy()
        runs = {1: [], 2: [], 3: []}
        for rnd in range(16):
            for s in (1, 2, 3):
                base = (s - 1) * 1000
                runs[s].extend(
                    p.allocate(FILE, s, target(), dlocal=base + rnd * 4, count=4)
                )
        for s, rs in runs.items():
            spans = sorted((r.physical, r.length) for r in rs)
            breaks = sum(
                1
                for (a, al), (b, _) in zip(spans, spans[1:])
                if b != a + al
            )
            # log2(16 rounds) window jumps at most, not one break per write.
            assert breaks <= 5

    def test_random_stream_does_not_interrupt_sequential_one(self):
        """§III.B: "preallocation sequence of the sequential stream
        interposed by random streams is not interrupted"."""
        p = make_policy(miss_threshold=2)
        import numpy as np
        rng = np.random.default_rng(0)
        seq_runs = []
        dlocal = 0
        for i in range(16):
            seq_runs.extend(p.allocate(FILE, 1, target(), dlocal=dlocal, count=4))
            dlocal += 4
            # Random stream scribbles all over its own huge range.
            p.allocate(FILE, 2, target(), dlocal=int(rng.integers(10_000, 60_000)), count=1)
        st2 = p.stream_state(FILE, 2, 0)
        assert not st2.prealloc_on  # classified random, preallocation off
        spans = sorted((r.physical, r.length) for r in seq_runs)
        breaks = sum(
            1 for (a, al), (b, _) in zip(spans, spans[1:]) if b != a + al
        )
        assert breaks <= 5  # sequential stream's chain survives


class TestMissCutoff:
    def test_random_stream_turns_prealloc_off(self):
        p = make_policy(miss_threshold=3)
        for dlocal in (0, 5000, 10000, 15000, 20000):
            p.allocate(FILE, 9, target(), dlocal=dlocal, count=1)
        st = p.stream_state(FILE, 9, 0)
        assert not st.prealloc_on
        assert p.metrics.count("alloc.streams_turned_random") == 1

    def test_no_reservation_after_cutoff(self):
        p = make_policy(miss_threshold=2)
        for dlocal in (0, 5000, 10000, 15000):
            p.allocate(FILE, 9, target(), dlocal=dlocal, count=1)
        st = p.stream_state(FILE, 9, 0)
        assert st.sequential is None

    def test_promotion_resets_miss_count(self):
        """A stream alternating runs and jumps (BTIO rows) never trips the
        cut-off because every sw hit proves it sequential again."""
        p = make_policy(miss_threshold=3)
        dlocal = 0
        for _ in range(10):  # 10 region jumps, each followed by a seq hit
            p.allocate(FILE, 9, target(), dlocal=dlocal, count=4)
            p.allocate(FILE, 9, target(), dlocal=dlocal + 4, count=4)
            dlocal += 10_000
        st = p.stream_state(FILE, 9, 0)
        assert st.prealloc_on

    def test_first_extend_is_not_a_miss(self):
        p = make_policy(miss_threshold=1)
        p.allocate(FILE, 9, target(), dlocal=0, count=4)
        st = p.stream_state(FILE, 9, 0)
        assert st.misses == 0
        assert st.prealloc_on


class TestRelease:
    def test_release_returns_reserved_blocks(self):
        p = make_policy()
        fsm = p.fsm
        p.allocate(FILE, 7, target(), dlocal=0, count=4)
        free_before = fsm.free_blocks
        released = p.release(FILE)
        assert released == 8  # the initial sequential window
        assert fsm.free_blocks == free_before + 8
        assert p.stream_state(FILE, 7, 0) is None

    def test_release_includes_unconsumed_current_window(self):
        p = make_policy()
        p.allocate(FILE, 7, target(), dlocal=0, count=4)
        p.allocate(FILE, 7, target(), dlocal=4, count=2)  # promote, consume 2 of 8
        st = p.stream_state(FILE, 7, 0)
        expected = st.current.remaining + st.sequential.length
        assert p.release(FILE) == expected

    def test_no_block_leak_over_lifecycle(self):
        p = make_policy()
        fsm = p.fsm
        total = fsm.free_blocks
        allocated = 0
        dlocal = 0
        for _ in range(20):
            for r in p.allocate(FILE, 7, target(), dlocal=dlocal, count=4):
                allocated += r.length
            dlocal += 4
        p.release(FILE)
        # Whatever is not free must be exactly the blocks handed to the file.
        assert fsm.free_blocks == total - allocated


class TestOutOfSpace:
    """ENOSPC must be exception-safe: a failed allocate leaves the stream
    state and the free-space accounting exactly as they were, and a later
    allocate (after space is freed) works normally."""

    def _tiny_policy(self) -> OnDemandPolicy:
        fsm = FreeSpaceManager(ndisks=1, blocks_per_disk=64, pags_per_disk=1)
        return OnDemandPolicy(
            AllocPolicyParams(policy="ondemand", window_scale=2, miss_threshold=3),
            fsm,
        )

    def _fill(self, p: OnDemandPolicy) -> list:
        from repro.errors import NoSpaceError

        runs = []
        dlocal = 0
        while True:
            try:
                for r in p.allocate(2, 1, target(), dlocal=dlocal, count=4):
                    dlocal = r.dlocal + r.length
                    runs.append(r)
            except NoSpaceError:
                return runs

    def test_failed_allocate_rolls_back(self):
        from repro.errors import NoSpaceError

        p = self._tiny_policy()
        self._fill(p)
        used_before = p.fsm.used_blocks
        st_before = p.stream_state(2, 1, 0)
        misses_before = st_before.misses if st_before else 0
        last_end_before = st_before.last_end if st_before else None
        with pytest.raises(NoSpaceError):
            p.allocate(FILE, 7, target(), dlocal=0, count=4)
        assert p.fsm.used_blocks == used_before  # nothing leaked
        st_new = p.stream_state(FILE, 7, 0)
        if st_new is not None:  # entry may exist, but must be pristine
            assert st_new.misses == 0
            assert st_new.current is None and st_new.sequential is None
            assert st_new.last_end is None
        st_after = p.stream_state(2, 1, 0)
        if st_after is not None:
            assert st_after.misses == misses_before
            assert st_after.last_end == last_end_before

    def test_allocate_works_after_space_freed(self):
        from repro.errors import NoSpaceError

        p = self._tiny_policy()
        filler_runs = self._fill(p)
        with pytest.raises(NoSpaceError):
            p.allocate(FILE, 7, target(), dlocal=0, count=4)
        p.release(2)
        for r in filler_runs[:4]:  # delete part of the filler file
            p.fsm.free(r.physical, r.length)
        runs = p.allocate(FILE, 7, target(), dlocal=0, count=4)
        assert sum(r.length for r in runs) == 4

    def test_enospc_rollback_counter(self):
        from repro.errors import NoSpaceError

        p = self._tiny_policy()
        self._fill(p)
        before = p.metrics.count("alloc.enospc_rolled_back_blocks")
        with pytest.raises(NoSpaceError):
            p.allocate(FILE, 7, target(), dlocal=0, count=4)
        assert p.metrics.count("alloc.enospc_rolled_back_blocks") >= before
