"""LayoutInspector: fragmentation metrics over data and metadata planes."""

from __future__ import annotations

import json

import pytest

from repro.fs.dataplane import DataPlane
from repro.fs.redbud import RedbudFileSystem
from repro.obs.layout import LAYOUT_SCHEMA_VERSION, LayoutInspector, block_heatmap
from repro.units import KiB, MiB
from repro.workloads.streams import SharedFileMicrobench

from tests.conftest import small_config


def _written_plane(policy: str, nstreams: int = 8, file_mib: int = 8):
    plane = DataPlane(small_config(policy=policy))
    bench = SharedFileMicrobench(
        nstreams=nstreams,
        file_bytes=file_mib * MiB,
        write_request_bytes=16 * KiB,
    )
    f = bench.create_shared_file(plane)
    bench.phase1_write(plane, f)
    plane.close_file(f)
    return plane, bench


class TestDataplaneInspection:
    def test_static_policy_is_perfectly_contiguous(self):
        plane, bench = _written_plane("static")
        report = LayoutInspector(region_bytes=bench.region_bytes).inspect_dataplane(
            plane, label="static"
        )
        (fl,) = report.files
        assert fl.interleave_factor == pytest.approx(1.0)
        assert fl.contiguity == pytest.approx(1.0)
        assert fl.seek_cost_s == pytest.approx(0.0)
        assert fl.seeks == 0

    def test_interleaved_policies_rank_as_the_paper_says(self):
        """reservation interleaves worst, ondemand mitigates, static wins."""
        metrics = {}
        for policy in ("reservation", "ondemand", "static"):
            plane, bench = _written_plane(policy)
            report = LayoutInspector(
                region_bytes=bench.region_bytes
            ).inspect_dataplane(plane, label=policy)
            metrics[policy] = report
        assert (
            metrics["reservation"].interleave_factor
            > metrics["ondemand"].interleave_factor
            > metrics["static"].interleave_factor
        )
        assert (
            metrics["reservation"].total_extents
            > metrics["ondemand"].total_extents
            > metrics["static"].total_extents
        )
        assert (
            metrics["reservation"].seek_cost_s
            > metrics["ondemand"].seek_cost_s
            >= metrics["static"].seek_cost_s
        )

    def test_free_space_stats_account_for_every_block(self):
        plane, _ = _written_plane("ondemand")
        stats = LayoutInspector().free_space_stats(plane.fsm)
        assert stats.total_blocks == plane.fsm.total_blocks
        assert stats.free_blocks == plane.fsm.free_blocks
        assert stats.runs == sum(stats.run_hist.values())
        assert 0 < stats.largest_run <= stats.free_blocks
        assert stats.mean_run == pytest.approx(stats.free_blocks / stats.runs)

    def test_heatmap_shows_occupied_groups(self):
        plane, _ = _written_plane("ondemand")
        art = block_heatmap(plane.fsm)
        assert "pag" in art and "|" in art
        # Every written plane has at least one occupied group row.
        assert any(line.startswith("pag") for line in art.splitlines())

    def test_heatmap_rejects_nonpositive_width(self):
        plane, _ = _written_plane("ondemand")
        with pytest.raises(ValueError):
            block_heatmap(plane.fsm, width=0)

    def test_region_boundaries_define_interleave(self):
        """With one region per stream the interleave factor counts how many
        physically-contiguous chunks each stream's region splits into."""
        plane, bench = _written_plane("reservation")
        coarse = LayoutInspector(region_bytes=bench.file_bytes).inspect_dataplane(
            plane
        )
        fine = LayoutInspector(region_bytes=bench.region_bytes).inspect_dataplane(
            plane
        )
        # One giant region can only look worse-or-equal per region than many.
        assert fine.files[0].regions > coarse.files[0].regions
        assert fine.interleave_factor >= 1.0
        assert coarse.interleave_factor >= 1.0


class TestSerialization:
    def test_to_dict_is_json_able_and_versioned(self):
        plane, bench = _written_plane("ondemand")
        report = LayoutInspector(region_bytes=bench.region_bytes).inspect_dataplane(
            plane, label="x"
        )
        doc = report.to_dict()
        assert doc["schema_version"] == LAYOUT_SCHEMA_VERSION
        assert doc["source"] == "dataplane"
        encoded = json.dumps(doc, sort_keys=True)
        assert json.loads(encoded) == doc

    def test_format_mentions_all_headline_metrics(self):
        plane, bench = _written_plane("reservation")
        report = LayoutInspector(region_bytes=bench.region_bytes).inspect_dataplane(
            plane, label="res"
        )
        text = report.format()
        for needle in (
            "interleave-factor",
            "fragmentation-degree",
            "free space",
            "seek-cost",
            "block map",
        ):
            assert needle in text, needle


class TestMdsInspection:
    def test_embedded_directory_stats(self):
        fs = RedbudFileSystem(small_config(layout="embedded"))
        fs.mkdir("/d")
        for i in range(40):
            fs.create(f"/d/f{i}")
            fs.write(f"/d/f{i}", 0, 16 * KiB)
        report = LayoutInspector().inspect_mds(fs.mds, label="embedded")
        assert report.source == "mds"
        d = report.directories
        assert d is not None
        assert d.files >= 40
        assert d.directories >= 1
        assert d.mean_degree >= 0.0
        assert report.fragmentation_degree == pytest.approx(d.mean_degree)

    def test_normal_directory_stats(self):
        fs = RedbudFileSystem(small_config(layout="normal"))
        fs.mkdir("/d")
        for i in range(20):
            fs.create(f"/d/f{i}")
        report = LayoutInspector().inspect_mds(fs.mds, label="normal")
        assert report.directories is not None
        assert report.directories.files >= 20


class TestRunResultIntegration:
    def test_fig6a_attaches_layout_captures(self):
        from repro.core.run import run

        result = run(
            "fig6a", scale=0.05, seed=0, stream_counts=(8,),
            policies=("reservation", "static"),
        )
        assert set(result.layouts) == {"reservation:n8", "static:n8"}
        res = result.layout("reservation:n8")
        stat = result.layout("static:n8")
        assert res.interleave_factor > stat.interleave_factor
        with pytest.raises(KeyError):
            result.layout("nope")
