"""mdtest tree benchmark: geometry, phases, layout comparison."""

import pytest

from repro.errors import ConfigError
from repro.fs.verify import check_mds
from repro.meta.mds import MetadataServer
from repro.workloads.mdtest import MdtestConfig, MdtestWorkload

from tests.conftest import small_config


class TestConfigGeometry:
    def test_tree_counts(self):
        cfg = MdtestConfig(depth=2, branch=3, items_per_dir=10)
        assert cfg.ndirs == 13  # 1 + 3 + 9
        assert cfg.nitems == 130

    def test_depth_zero_is_one_dir(self):
        cfg = MdtestConfig(depth=0, branch=5, items_per_dir=4)
        assert cfg.ndirs == 1
        assert cfg.nitems == 4

    def test_unary_branch(self):
        cfg = MdtestConfig(depth=3, branch=1)
        assert cfg.ndirs == 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            MdtestConfig(depth=-1)
        with pytest.raises(ConfigError):
            MdtestConfig(ntasks=0)


class TestRun:
    @pytest.fixture(params=["normal", "embedded"])
    def mds(self, request) -> MetadataServer:
        return MetadataServer(small_config(layout=request.param))

    def test_all_phases_produce_rates(self, mds):
        result = MdtestWorkload(MdtestConfig(depth=1, branch=2, items_per_dir=8, ntasks=2)).run(mds)
        assert result.dir_create > 0
        assert result.file_create > 0
        assert result.file_stat > 0
        assert result.file_remove > 0
        assert result.total_ops == (2 * 3) + 3 * (2 * 3 * 8)

    def test_tree_is_fully_removed(self, mds):
        cfg = MdtestConfig(depth=1, branch=2, items_per_dir=4, ntasks=2)
        MdtestWorkload(cfg).run(mds)
        # Directories remain; every file is gone.
        for t in range(cfg.ntasks):
            d = mds.layout.dir_of(mds.stat(mds.root, f"task{t:03d}").ino)
            assert not any(n.startswith("file.") for n in mds.readdir(d))
        check_mds(mds).raise_if_dirty()

    def test_namespace_consistent_after_run(self, mds):
        MdtestWorkload(MdtestConfig(depth=1, branch=2, items_per_dir=4, ntasks=2)).run(mds)
        names = mds.readdir(mds.root)
        assert set(names) == {"task000", "task001"}
        check_mds(mds).raise_if_dirty()


class TestLayoutComparison:
    def test_embedded_beats_normal_on_stat_phase(self):
        rates = {}
        for layout in ("normal", "embedded"):
            mds = MetadataServer(small_config(layout=layout))
            result = MdtestWorkload(
                MdtestConfig(depth=1, branch=3, items_per_dir=32, ntasks=3)
            ).run(mds, cold_stat=True)
            rates[layout] = result
        # Many small directories dilute the create win (checkpoint seeks
        # across groups dominate both layouts); embedded must at least
        # hold parity there and clearly win the cold stat sweep.
        assert rates["embedded"].file_create > 0.9 * rates["normal"].file_create
        assert rates["embedded"].file_stat > 1.5 * rates["normal"].file_stat
