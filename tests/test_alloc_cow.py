"""Copy-on-write / log-structured allocation (§II.B Ceph baseline)."""

import pytest

from repro.alloc.base import AllocTarget
from repro.alloc.cow import CowPolicy
from repro.block.freespace import FreeSpaceManager
from repro.config import AllocPolicyParams
from repro.fs.dataplane import DataPlane
from repro.units import KiB, MiB
from repro.workloads.streams import SharedFileMicrobench

from tests.conftest import small_config


def make_policy() -> CowPolicy:
    fsm = FreeSpaceManager(ndisks=1, blocks_per_disk=8192, pags_per_disk=1)
    return CowPolicy(AllocPolicyParams(policy="cow"), fsm)


TARGET = AllocTarget(group_index=0, slot=0, width=1, stripe_blocks=64)


class TestPolicy:
    def test_appends_in_arrival_order(self):
        p = make_policy()
        a = p.allocate(1, 100, TARGET, dlocal=0, count=4)
        b = p.allocate(1, 200, TARGET, dlocal=1000, count=4)
        c = p.allocate(2, 100, TARGET, dlocal=0, count=4)  # other file too
        assert b[0].physical == a[0].physical + 4
        assert c[0].physical == b[0].physical + 4

    def test_wraps_into_reclaimed_space(self):
        p = make_policy()
        fsm = p.fsm
        runs = p.allocate(1, 1, TARGET, dlocal=0, count=4096)
        # Free the first half (deleted segments) and exhaust the tail.
        fsm.free(runs[0].physical, 2048)
        p.allocate(1, 1, TARGET, dlocal=5000, count=4096)
        tail = p.allocate(1, 1, TARGET, dlocal=10000, count=1024)
        got = sum(r.length for r in tail)
        assert got == 1024  # found the reclaimed space


class TestCowDataPlane:
    def test_overwrite_relocates(self):
        plane = DataPlane(small_config(policy="cow"))
        f = plane.create_file("/f", width=1)
        plane.write(f, 1, 0, 64 * KiB)
        first = f.maps[0].extents()[0].physical
        plane.write(f, 1, 0, 64 * KiB)  # overwrite in place? no: relocated
        second = f.maps[0].extents()[0].physical
        assert second != first
        assert plane.metrics.count("fs.cow_relocated_blocks") == 16

    def test_overwrite_does_not_leak(self):
        plane = DataPlane(small_config(policy="cow"))
        free0 = plane.fsm.free_blocks
        f = plane.create_file("/f", width=1)
        for _ in range(8):
            plane.write(f, 1, 0, 64 * KiB)
        assert plane.fsm.free_blocks == free0 - 16  # only the live copy held
        plane.delete_file(f)
        assert plane.fsm.free_blocks == free0

    def test_in_place_policies_do_not_relocate(self):
        plane = DataPlane(small_config(policy="ondemand"))
        f = plane.create_file("/f", width=1)
        plane.write(f, 1, 0, 64 * KiB)
        first = f.maps[0].extents()[0].physical
        plane.write(f, 1, 0, 64 * KiB)
        assert f.maps[0].extents()[0].physical == first


class TestCowTradeOff:
    def test_writes_fast_reads_compromised(self):
        """§II.B: CoW 'works extremely well for write activity' but 'the
        performance of read traffic can be compromised' — on the shared
        concurrent-stream workload its reads fragment like reservation's,
        while on-demand keeps streams contiguous."""
        results = {}
        for policy in ("cow", "ondemand"):
            plane = DataPlane(small_config(policy=policy, ndisks=2))
            bench = SharedFileMicrobench(
                nstreams=16, file_bytes=16 * MiB, write_request_bytes=16 * KiB
            )
            f = bench.create_shared_file(plane)
            w = bench.phase1_write(plane, f)
            plane.close_file(f)
            r = bench.phase2_read(plane, f)
            results[policy] = (w.mib_per_s, r.mib_per_s, f.extent_count)
        # Arrival-order appends fragment the logical mapping far more.
        assert results["cow"][2] > 4 * results["ondemand"][2]
        # And its writes are at least as fast as on-demand's.
        assert results["cow"][0] >= results["ondemand"][0] * 0.9
