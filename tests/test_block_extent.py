"""Extents and extent maps: mapping, merging, splitting, fragmentation."""

import pytest

from repro.block.extent import Extent, ExtentFlags, ExtentMap
from repro.errors import ExtentError


class TestExtent:
    def test_ends(self):
        e = Extent(10, 100, 5)
        assert e.logical_end == 15
        assert e.physical_end == 105

    def test_physical_for(self):
        e = Extent(10, 100, 5)
        assert e.physical_for(12) == 102

    def test_physical_for_outside_rejected(self):
        with pytest.raises(ExtentError):
            Extent(10, 100, 5).physical_for(15)

    def test_abuts(self):
        a = Extent(0, 100, 5)
        assert a.abuts(Extent(5, 105, 3))
        assert not a.abuts(Extent(5, 106, 3))  # physical gap
        assert not a.abuts(Extent(6, 105, 3))  # logical gap
        assert not a.abuts(Extent(5, 105, 3, ExtentFlags.UNWRITTEN))  # flags

    def test_invalid_rejected(self):
        with pytest.raises(ExtentError):
            Extent(-1, 0, 1)
        with pytest.raises(ExtentError):
            Extent(0, 0, 0)


class TestInsert:
    def test_insert_and_lookup(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 10))
        ext = m.lookup_block(3)
        assert ext is not None
        assert ext.physical_for(3) == 503

    def test_merges_abutting(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 10))
        m.insert(Extent(10, 510, 10))
        assert m.extent_count == 1
        assert m.extents()[0].length == 20

    def test_merges_both_neighbours(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 10))
        m.insert(Extent(20, 520, 10))
        m.insert(Extent(10, 510, 10))
        assert m.extent_count == 1

    def test_physically_discontiguous_does_not_merge(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 10))
        m.insert(Extent(10, 900, 10))
        assert m.extent_count == 2

    def test_overlap_rejected(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 10))
        with pytest.raises(ExtentError):
            m.insert(Extent(5, 900, 10))
        with pytest.raises(ExtentError):
            m.insert(Extent(9, 400, 1))

    def test_interleaved_streams_fragment(self):
        """Figure 1(a): arrival-order placement of concurrent streams makes
        logical-adjacent blocks physically scattered -> no merging."""
        m = ExtentMap()
        # 4 streams, regions of 4 blocks, allocated round-robin.
        phys = 1000
        for rnd in range(4):
            for s in range(4):
                m.insert(Extent(s * 4 + rnd, phys, 1))
                phys += 1
        assert m.extent_count == 16


class TestLookupRange:
    def test_clips_to_range(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 10))
        got = m.lookup_range(3, 4)
        assert len(got) == 1
        assert (got[0].logical, got[0].physical, got[0].length) == (3, 503, 4)

    def test_spans_multiple_extents(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 5))
        m.insert(Extent(5, 900, 5))
        got = m.lookup_range(3, 4)
        assert [(e.physical, e.length) for e in got] == [(503, 2), (900, 2)]

    def test_holes_absent(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 2))
        m.insert(Extent(8, 900, 2))
        got = m.lookup_range(0, 10)
        assert sum(e.length for e in got) == 4

    def test_holes_in_range(self):
        m = ExtentMap()
        m.insert(Extent(2, 500, 2))
        holes = m.holes_in_range(0, 10)
        assert holes == [(0, 2), (4, 6)]

    def test_bad_count(self):
        with pytest.raises(ExtentError):
            ExtentMap().lookup_range(0, 0)


class TestMarkWritten:
    def test_converts_whole_extent(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 10, ExtentFlags.UNWRITTEN))
        m.mark_written(0, 10)
        assert m.written_blocks == 10
        assert m.extent_count == 1

    def test_splits_partially(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 10, ExtentFlags.UNWRITTEN))
        m.mark_written(3, 4)
        assert m.written_blocks == 4
        assert m.extent_count == 3
        assert m.lookup_block(0).unwritten
        assert not m.lookup_block(3).unwritten
        assert m.lookup_block(7).unwritten

    def test_remerges_written_pieces(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 10, ExtentFlags.UNWRITTEN))
        m.mark_written(0, 5)
        m.mark_written(5, 5)
        assert m.extent_count == 1
        assert m.written_blocks == 10

    def test_noop_on_written(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 10))
        m.mark_written(0, 10)
        assert m.extent_count == 1

    def test_validate_after_split(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 16, ExtentFlags.UNWRITTEN))
        m.mark_written(2, 3)
        m.mark_written(9, 2)
        m.validate()


class TestRemove:
    def test_remove_returns_fragments(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 10))
        removed = m.remove_range(2, 4)
        assert [(e.physical, e.length) for e in removed] == [(502, 4)]
        assert m.mapped_blocks == 6
        assert m.holes_in_range(0, 10) == [(2, 4)]

    def test_remove_nothing(self):
        m = ExtentMap()
        assert m.remove_range(0, 10) == []

    def test_clear(self):
        m = ExtentMap()
        m.insert(Extent(0, 500, 4))
        m.insert(Extent(8, 900, 4))
        removed = m.clear()
        assert len(removed) == 2
        assert m.extent_count == 0

    def test_size_blocks(self):
        m = ExtentMap()
        assert m.size_blocks == 0
        m.insert(Extent(8, 900, 4))
        assert m.size_blocks == 12
