"""Inode numbering, global directory table, rename correlations (§IV.B)."""

import pytest

from repro.errors import InodeError
from repro.meta.inumber import (
    MAX_DIR_ID,
    MAX_OFFSET,
    GlobalDirectoryTable,
    decode_ino,
    encode_ino,
)


class TestEncoding:
    def test_roundtrip(self):
        for dir_id, offset in [(0, 0), (1, 0), (7, 42), (MAX_DIR_ID, MAX_OFFSET)]:
            assert decode_ino(encode_ino(dir_id, offset)) == (dir_id, offset)

    def test_distinct(self):
        assert encode_ino(1, 2) != encode_ino(2, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(InodeError):
            encode_ino(MAX_DIR_ID + 1, 0)
        with pytest.raises(InodeError):
            encode_ino(0, MAX_OFFSET + 1)
        with pytest.raises(InodeError):
            encode_ino(-1, 0)

    def test_decode_range_check(self):
        with pytest.raises(InodeError):
            decode_ino(-1)


class TestGlobalDirectoryTable:
    def test_ids_are_sequential_from_root(self):
        t = GlobalDirectoryTable()
        assert t.new_dir_id(encode_ino(0, 1)) == GlobalDirectoryTable.ROOT_DIR_ID
        assert t.new_dir_id(encode_ino(1, 0)) == 2

    def test_lookup(self):
        t = GlobalDirectoryTable()
        root_ino = encode_ino(0, 1)
        d = t.new_dir_id(root_ino)
        assert t.dir_ino_of(d) == root_ino
        assert d in t

    def test_unknown_id_rejected(self):
        with pytest.raises(InodeError):
            GlobalDirectoryTable().dir_ino_of(99)

    def test_drop(self):
        t = GlobalDirectoryTable()
        d = t.new_dir_id(encode_ino(0, 1))
        t.drop_dir(d)
        assert d not in t
        with pytest.raises(InodeError):
            t.drop_dir(d)

    def test_ancestry_walks_to_root(self):
        t = GlobalDirectoryTable()
        root_ino = encode_ino(0, 1)
        root_id = t.new_dir_id(root_ino)          # 1
        sub_ino = encode_ino(root_id, 0)          # subdir in root
        sub_id = t.new_dir_id(sub_ino)            # 2
        file_ino = encode_ino(sub_id, 5)          # file in subdir
        chain = t.ancestry(file_ino)
        assert chain == [sub_ino, root_ino]

    def test_ancestry_of_root_child(self):
        t = GlobalDirectoryTable()
        root_ino = encode_ino(0, 1)
        root_id = t.new_dir_id(root_ino)
        assert t.ancestry(encode_ino(root_id, 3)) == [root_ino]


class TestRenameCorrelation:
    def test_old_resolves_to_new(self):
        t = GlobalDirectoryTable()
        t.correlate_rename(100, 200)
        assert t.resolve(100) == 200
        assert t.resolve(200) == 200

    def test_chained_renames(self):
        t = GlobalDirectoryTable()
        t.correlate_rename(100, 200)
        t.correlate_rename(200, 300)
        assert t.resolve(100) == 300
        assert t.resolve(200) == 300

    def test_forget(self):
        t = GlobalDirectoryTable()
        t.correlate_rename(100, 200)
        t.forget_correlations()
        assert t.resolve(100) == 100
        assert t.correlation_count == 0

    def test_untouched_ino_resolves_to_itself(self):
        assert GlobalDirectoryTable().resolve(42) == 42
