"""Crash-recovery property: any crash point replays to a consistent MDS.

The write-ahead contract under test: a metadata operation is durable iff
its journal commit record landed whole.  Whatever request the injected
crash interrupts, ``crash_recover`` + ``repair_mds`` must always converge
to a clean fsck report — no crash point may leave damage fsck cannot fix.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CrashError
from repro.fault import FaultInjector, FaultPlan
from repro.fs.verify import check_mds, repair_mds
from repro.meta.layout import AccessPlan
from repro.meta.mds import MetadataServer

from tests.conftest import small_config


def run_workload(mds: MetadataServer) -> None:
    """A metarates-style create/delete mix (may be cut short by a crash)."""
    d = mds.mkdir(mds.root, "work")
    sub = mds.mkdir(d, "sub")
    for i in range(40):
        mds.create(d, f"f{i:03d}")
    for i in range(0, 40, 5):
        mds.delete(d, f"f{i:03d}")
    for i in range(10):
        mds.create(sub, f"g{i:03d}")


@given(
    crash_after=st.integers(min_value=0, max_value=300),
    layout=st.sampled_from(["embedded", "normal"]),
)
@settings(max_examples=30, deadline=None)
def test_any_crash_point_recovers_clean(crash_after, layout):
    mds = MetadataServer(small_config(layout=layout))
    injector = FaultInjector(FaultPlan(seed=0, crash_after_requests=crash_after))
    mds.disk.attach_injector(injector)
    try:
        run_workload(mds)
    except CrashError:
        pass
    injector.disarm()
    mds.crash_recover()
    repair = repair_mds(mds)
    assert repair.converged, [f.message for f in repair.after.findings]
    # Recovery left no un-checkpointed state behind.
    assert mds._dirty == set()
    assert mds.journal.replay() == []


@given(crash_after=st.integers(min_value=0, max_value=300))
@settings(max_examples=15, deadline=None)
def test_server_still_works_after_recovery(crash_after):
    mds = MetadataServer(small_config())
    injector = FaultInjector(FaultPlan(seed=0, crash_after_requests=crash_after))
    mds.disk.attach_injector(injector)
    try:
        run_workload(mds)
    except CrashError:
        pass
    injector.disarm()
    mds.crash_recover()
    d = mds.mkdir(mds.root, "after")
    for i in range(10):
        mds.create(d, f"n{i}")
    assert set(mds.readdir(d)) == {f"n{i}" for i in range(10)}
    check_mds(mds).raise_if_dirty()


class TestTornJournal:
    def test_torn_commit_record_is_not_replayed(self):
        mds = MetadataServer(small_config())
        injector = FaultInjector(FaultPlan(seed=0, torn_every=1))
        mds.disk.attach_injector(injector)
        # A two-block commit record: the injector tears it, so write-ahead
        # rules say the operation never committed.
        mds._execute(AccessPlan(dirties=[7], journal_records=2), "test-op")
        assert mds.metrics.count("mds.torn_journal_records") == 1
        assert mds.journal.replay() == []
        assert len(mds.journal.pending_records()) == 1

    def test_recovery_discards_torn_records(self):
        mds = MetadataServer(small_config())
        injector = FaultInjector(FaultPlan(seed=0, torn_every=1))
        mds.disk.attach_injector(injector)
        mds._execute(AccessPlan(dirties=[7], journal_records=2), "test-op")
        injector.disarm()
        mds.crash_recover()
        assert mds.metrics.count("mds.discarded_records") == 1
        assert mds.journal.pending_records() == []

    def test_single_block_commits_are_atomic(self):
        mds = MetadataServer(small_config())
        injector = FaultInjector(FaultPlan(seed=0, torn_every=1))
        mds.disk.attach_injector(injector)
        d = mds.mkdir(mds.root, "work")
        for i in range(5):
            mds.create(d, f"f{i}")
        # Ordinary ops journal one block at a time: nothing tears.
        assert mds.metrics.count("mds.torn_journal_records") == 0


class TestJournalWal:
    def test_log_then_commit_then_replay(self):
        mds = MetadataServer(small_config())
        record, requests = mds.journal.log([11, 12])
        assert record.dirties == (11, 12)
        assert requests  # the append produced write requests
        mds.journal.commit(record)
        assert mds.journal.replay() == [record]

    def test_truncate_clears_records(self):
        mds = MetadataServer(small_config())
        record, _ = mds.journal.log([11])
        mds.journal.commit(record)
        mds.journal.truncate()
        assert mds.journal.replay() == []

    def test_checkpoint_truncates_journal(self):
        mds = MetadataServer(small_config())
        d = mds.mkdir(mds.root, "work")
        mds.create(d, "f")
        assert mds.journal.replay() != []
        mds.checkpoint()
        assert mds.journal.replay() == []
