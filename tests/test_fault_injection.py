"""Fault injection beneath the disk: plans, LSEs, torn writes, crashes."""

import pytest

from repro.config import DiskParams, SchedulerParams
from repro.disk.disk import SimulatedDisk
from repro.disk.model import BlockRequest
from repro.errors import ConfigError, CrashError, LatentSectorError
from repro.fault import FaultInjector, FaultPlan


def make_disk() -> SimulatedDisk:
    return SimulatedDisk(DiskParams(capacity_blocks=1 << 14), SchedulerParams())


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(7, 1 << 14)
        b = FaultPlan.seeded(7, 1 << 14)
        assert a == b

    def test_different_seeds_differ(self):
        assert FaultPlan.seeded(1, 1 << 14) != FaultPlan.seeded(2, 1 << 14)

    def test_crash_window_none_disables_crash(self):
        plan = FaultPlan.seeded(0, 1 << 14, crash_window=None)
        assert plan.crash_after_requests is None

    def test_crash_point_within_window(self):
        plan = FaultPlan.seeded(0, 1 << 14, crash_window=(10, 60))
        assert 10 <= plan.crash_after_requests < 60

    def test_lse_blocks_flattens_ranges(self):
        plan = FaultPlan(seed=0, lse_ranges=((5, 2), (100, 1)))
        assert plan.lse_blocks() == {5, 6, 100}

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(seed=0, torn_every=-1)
        with pytest.raises(ConfigError):
            FaultPlan(seed=0, crash_after_requests=-5)
        with pytest.raises(ConfigError):
            FaultPlan(seed=0, lse_ranges=((-1, 2),))


class TestLatentSectorErrors:
    def test_read_of_bad_block_raises(self):
        disk = make_disk()
        disk.attach_injector(FaultInjector(FaultPlan(seed=0, lse_ranges=((50, 2),))))
        with pytest.raises(LatentSectorError):
            disk.submit(BlockRequest(49, 4))

    def test_read_elsewhere_succeeds(self):
        disk = make_disk()
        disk.attach_injector(FaultInjector(FaultPlan(seed=0, lse_ranges=((50, 2),))))
        assert disk.submit(BlockRequest(200, 4)) > 0.0

    def test_write_heals(self):
        disk = make_disk()
        inj = FaultInjector(FaultPlan(seed=0, lse_ranges=((50, 2),)))
        disk.attach_injector(inj)
        disk.submit(BlockRequest(50, 2, is_write=True))
        assert inj.bad_blocks == frozenset()
        assert disk.submit(BlockRequest(50, 2)) > 0.0

    def test_develop_lse_after_write(self):
        disk = make_disk()
        inj = FaultInjector(FaultPlan(seed=0))
        disk.attach_injector(inj)
        disk.submit(BlockRequest(10, 4, is_write=True))
        assert inj.written == {10, 11, 12, 13}
        assert inj.develop_lse({11}) == 1
        with pytest.raises(LatentSectorError):
            disk.submit(BlockRequest(10, 4))

    def test_partial_batch_still_bills_serviced_requests(self):
        disk = make_disk()
        disk.attach_injector(FaultInjector(FaultPlan(seed=0, lse_ranges=((500, 1),))))
        busy_before = disk.busy_s
        with pytest.raises(LatentSectorError):
            # FIFO order within the arranged batch is not guaranteed, but at
            # least the requests serviced before the bad one must be billed.
            disk.submit_batch([BlockRequest(10, 2), BlockRequest(500, 1)])
        assert disk.busy_s > busy_before


class TestTornWrites:
    def test_every_nth_multiblock_write_is_torn(self):
        disk = make_disk()
        inj = FaultInjector(FaultPlan(seed=0, torn_every=2))
        disk.attach_injector(inj)
        for i in range(4):
            disk.submit(BlockRequest(i * 100, 8, is_write=True))
        assert inj.torn_writes == 2
        assert disk.metrics.count("fault.torn_writes") == 2

    def test_single_block_writes_are_atomic(self):
        disk = make_disk()
        inj = FaultInjector(FaultPlan(seed=0, torn_every=1))
        disk.attach_injector(inj)
        for i in range(5):
            disk.submit(BlockRequest(i * 10, 1, is_write=True))
        assert inj.torn_writes == 0

    def test_torn_write_persists_strict_prefix(self):
        disk = make_disk()
        inj = FaultInjector(FaultPlan(seed=0, torn_every=1))
        disk.attach_injector(inj)
        disk.submit(BlockRequest(0, 8, is_write=True))
        assert inj.written == set(range(0, 4))  # half persisted


class TestCrashPoints:
    def test_crash_fires_at_the_configured_request(self):
        disk = make_disk()
        inj = FaultInjector(FaultPlan(seed=0, crash_after_requests=3))
        disk.attach_injector(inj)
        for i in range(3):
            disk.submit(BlockRequest(i * 10, 1))
        with pytest.raises(CrashError):
            disk.submit(BlockRequest(100, 1))
        assert inj.crashes == 1

    def test_crash_disarms_injector(self):
        disk = make_disk()
        inj = FaultInjector(FaultPlan(seed=0, crash_after_requests=0))
        disk.attach_injector(inj)
        with pytest.raises(CrashError):
            disk.submit(BlockRequest(0, 1))
        # Recovery runs against a quiet disk: no re-crash.
        assert disk.submit(BlockRequest(0, 1)) > 0.0

    def test_detach_removes_injection(self):
        disk = make_disk()
        disk.attach_injector(FaultInjector(FaultPlan(seed=0, lse_ranges=((5, 1),))))
        disk.detach_injector()
        assert disk.submit(BlockRequest(5, 1)) > 0.0

    def test_disarmed_injector_counts_nothing(self):
        disk = make_disk()
        inj = FaultInjector(FaultPlan(seed=0, lse_ranges=((5, 1),), torn_every=1))
        disk.attach_injector(inj)
        inj.disarm()
        disk.submit(BlockRequest(5, 4, is_write=True))
        disk.submit(BlockRequest(5, 1))
        assert inj.requests_seen == 0
        assert inj.torn_writes == 0
