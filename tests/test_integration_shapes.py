"""Paper-shape integration tests: small-scale versions of every headline
claim in §V.  These assert *orderings and directions*, not absolute
numbers — the reproduction target for a simulation-level build.
"""

from __future__ import annotations

import pytest

from repro.core.run import run
from repro.core.runners import interference_claim, prealloc_waste

pytestmark = pytest.mark.slow


class TestFig6Shapes:
    @pytest.fixture(scope="class")
    def fig6a(self):
        # Paper stream counts: below ~32 streams the interleave stride
        # falls inside the drive's skip-merge range and reservation is
        # unpenalized (the same reason the paper's gains grow with scale).
        return run("fig6a", stream_counts=(32, 64), scale=1.0).payload

    def test_ondemand_beats_reservation(self, fig6a):
        for n in fig6a.stream_counts:
            assert fig6a.throughput["ondemand"][n] > fig6a.throughput["reservation"][n]

    def test_static_is_upper_bound(self, fig6a):
        for n in fig6a.stream_counts:
            assert fig6a.throughput["static"][n] >= fig6a.throughput["ondemand"][n]

    def test_gain_grows_with_stream_count(self, fig6a):
        g32 = fig6a.improvement_over("reservation", "ondemand", 32)
        g64 = fig6a.improvement_over("reservation", "ondemand", 64)
        assert g64 > g32

    def test_extents_reduced_by_factor(self, fig6a):
        for n in fig6a.stream_counts:
            assert fig6a.extents["reservation"][n] > 4 * fig6a.extents["ondemand"][n]

    def test_request_size_sweep(self):
        res = run(
            "fig6b", request_sizes=(16 * 1024, 256 * 1024), nstreams=32, scale=1.0
        ).payload
        small, large = res.request_sizes
        # Small phase-1 requests hurt reservation placement the most.
        assert res.throughput["reservation"][small] < res.throughput["reservation"][large]
        # On-demand stays ahead of reservation at the small size.
        assert res.throughput["ondemand"][small] > res.throughput["reservation"][small]


class TestFig7AndTable1:
    @pytest.fixture(scope="class")
    def fig7(self):
        return run("fig7", scale=0.5).payload

    def test_ondemand_wins_non_collective(self, fig7):
        for app in ("IOR", "BTIO"):
            res = fig7.get(app, "reservation", False)
            ond = fig7.get(app, "ondemand", False)
            assert ond.throughput_mib_s > res.throughput_mib_s

    def test_collective_is_much_faster(self, fig7):
        for app in ("IOR", "BTIO"):
            for policy in ("reservation", "ondemand"):
                nc = fig7.get(app, policy, False)
                co = fig7.get(app, policy, True)
                assert co.throughput_mib_s > nc.throughput_mib_s

    def test_collective_shrinks_the_gap(self, fig7):
        """§V.C.2: on-demand's effectiveness is "disappointed" under
        collective I/O."""
        for app in ("IOR", "BTIO"):
            gap_nc = (
                fig7.get(app, "ondemand", False).throughput_mib_s
                / fig7.get(app, "reservation", False).throughput_mib_s
            )
            gap_co = (
                fig7.get(app, "ondemand", True).throughput_mib_s
                / fig7.get(app, "reservation", True).throughput_mib_s
            )
            assert gap_co < gap_nc

    def test_table1_extent_ordering(self):
        t1 = run("table1", scale=0.5).payload
        for app in ("IOR", "BTIO"):
            vanilla = t1.get(app, "vanilla").extents
            reservation = t1.get(app, "reservation").extents
            ondemand = t1.get(app, "ondemand").extents
            assert vanilla >= reservation > ondemand
            # Table I: on-demand cuts extents by a factor vs reservation.
            assert reservation >= 3 * ondemand

    def test_table1_cpu_follows_extents(self):
        t1 = run("table1", scale=0.5).payload
        for app in ("IOR", "BTIO"):
            assert (
                t1.get(app, "ondemand").mds_cpu_pct
                < t1.get(app, "reservation").mds_cpu_pct
            )


class TestFig8Shapes:
    @pytest.fixture(scope="class")
    def fig8(self):
        return run("fig8", scale=0.06, dir_sizes=(500, 5000)).payload

    def test_embedded_faster_everywhere(self, fig8):
        for wl in ("create", "utime", "delete", "readdir-stat"):
            emb = fig8.get("redbud-mif", wl).ops_per_s
            normal = fig8.get("redbud-orig", wl).ops_per_s
            assert emb > normal, wl

    def test_embedded_fewer_disk_requests(self, fig8):
        for wl in ("create", "utime", "delete", "readdir-stat"):
            assert fig8.proportion(wl) < 1.0, wl

    def test_lustre_close_to_redbud(self, fig8):
        """§V.D: "the performance of the original Redbud version is quite
        close to that of the Lustre in all of the workloads"."""
        for wl in ("create", "utime", "delete", "readdir-stat"):
            a = fig8.get("redbud-orig", wl).ops_per_s
            b = fig8.get("lustre", wl).ops_per_s
            assert abs(a - b) / a < 0.25

    def test_rdstat_saving_grows_with_directory_size(self, fig8):
        sizes = sorted(fig8.rdstat_proportion_by_size)
        props = [fig8.rdstat_proportion_by_size[s] for s in sizes]
        assert props[-1] <= props[0]


class TestFig9Shapes:
    @pytest.fixture(scope="class")
    def fig9(self):
        return run("fig9", utilizations=(0.0, 0.8), scale=0.25).payload

    def test_aging_hurts_embedded_creation(self, fig9):
        fresh = fig9.get("redbud-mif", 0.0).create_ops_s
        aged = fig9.get("redbud-mif", 0.8).create_ops_s
        assert aged < fresh

    def test_deletion_not_severely_compromised(self, fig9):
        fresh = fig9.get("redbud-mif", 0.0).delete_ops_s
        aged = fig9.get("redbud-mif", 0.8).delete_ops_s
        assert aged > 0.85 * fresh

    def test_embedded_still_beats_traditional_when_aged(self, fig9):
        emb = fig9.get("redbud-mif", 0.8).create_ops_s
        for base in ("redbud-orig", "lustre"):
            assert emb > fig9.get(base, 0.8).create_ops_s

    def test_creation_hit_exceeds_traditional_hit(self, fig9):
        """Fig. 9: aging's create penalty is specific to embedded content
        preallocation; traditional creation barely moves."""
        emb_drop = 1 - fig9.get("redbud-mif", 0.8).create_ops_s / fig9.get(
            "redbud-mif", 0.0
        ).create_ops_s
        orig_drop = 1 - fig9.get("redbud-orig", 0.8).create_ops_s / fig9.get(
            "redbud-orig", 0.0
        ).create_ops_s
        assert emb_drop > orig_drop


class TestFig10Shapes:
    @pytest.fixture(scope="class")
    def fig10(self):
        return run("fig10", scale=0.3).payload

    def test_embedded_faster_on_file_intensive_apps(self, fig10):
        for app in ("postmark", "tar", "make-clean"):
            assert fig10.time_proportion(app) < 1.0, app

    def test_make_improvement_is_smallest(self, fig10):
        """§V.D.3: make is CPU-intensive, so its gain is much smaller."""
        make_gain = 1 - fig10.time_proportion("make")
        other_gains = [
            1 - fig10.time_proportion(app) for app in ("postmark", "tar", "make-clean")
        ]
        assert make_gain < max(other_gains)
        assert make_gain < 0.15


class TestHeadlineClaims:
    def test_interference_claim(self):
        """§I: intra-file interference costs >40% of I/O performance."""
        claim = interference_claim(scale=1.0)
        assert claim.loss_fraction > 0.40

    def test_prealloc_waste_claim(self):
        """§III.C: large static preallocation wastes space on small files."""
        waste = prealloc_waste(nfiles=2000)
        assert waste.waste_ratio > 8.0
