"""Unified runner API: RunResult shape, unified invocation, trace CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.run import RunResult, fingerprint, run, runner_names
from repro.errors import ConfigError
from repro.obs import Tracer
from repro.sim.metrics import ThroughputResult

SCALE = 0.05


class TestRegistry:
    def test_all_figures_registered(self):
        names = runner_names()
        for expected in ("fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10", "table1"):
            assert expected in names

    def test_unknown_runner_rejected(self):
        with pytest.raises(ConfigError, match="unknown runner"):
            run("fig99")

    def test_fingerprint_deterministic_and_order_free(self):
        a = fingerprint("fig6a", scale=0.5, seed=1)
        b = fingerprint("fig6a", seed=1, scale=0.5)
        assert a == b and len(a) == 12
        assert fingerprint("fig6a", scale=0.5, seed=2) != a


class TestRunResultShape:
    """RunResult contract across (at least) three different runners."""

    @pytest.fixture(scope="class")
    def fig6a(self):
        return run("fig6a", scale=SCALE, stream_counts=(4,),
                   policies=("reservation", "ondemand"), ndisks=2)

    @pytest.fixture(scope="class")
    def fig8(self):
        return run("fig8", scale=0.02, dir_sizes=(200,))

    @pytest.fixture(scope="class")
    def fig9(self):
        return run("fig9", scale=0.1, utilizations=(0.0,))

    def test_uniform_shape(self, fig6a, fig8, fig9):
        for result in (fig6a, fig8, fig9):
            assert isinstance(result, RunResult)
            assert len(result.fingerprint) == 12
            assert result.phases, f"{result.name} recorded no phases"
            for label, phase in result.phases.items():
                assert isinstance(phase, ThroughputResult), label
            assert result.payload is not None
            assert result.trace is None  # tracing off by default

    def test_fig6a_phases_and_metrics(self, fig6a):
        assert "read:ondemand:n4" in fig6a.phases
        read = fig6a.phase("read:ondemand:n4")
        assert read.mib_per_s == pytest.approx(
            fig6a.payload.throughput["ondemand"][4]
        )
        assert fig6a.metrics.count("fs.writes") > 0
        assert fig6a.metrics.histogram("disk.request_latency_s").count > 0

    def test_phase_lookup_error_names_known_phases(self, fig6a):
        with pytest.raises(KeyError, match="read:ondemand:n4"):
            fig6a.phase("nope")

    def test_fig8_phases_per_profile(self, fig8):
        assert "create:redbud-mif" in fig8.phases
        assert fig8.metrics.histogram("mds.op_latency_s").count > 0

    def test_fig9_payload_type(self, fig9):
        assert fig9.payload.get("redbud-mif", 0.0).create_ops_s > 0

    def test_trace_requested(self):
        result = run("fig6a", scale=SCALE, trace=True, stream_counts=(4,),
                     policies=("ondemand",), ndisks=2)
        assert isinstance(result.trace, Tracer)
        assert len(result.trace) > 0
        layers = {e.layer for e in result.trace.events()}
        assert "disk" in layers and "run" in layers


class TestUnifiedInvocation:
    """``run(name, scale=..., jobs=..., seed=...)`` works for every runner
    and execution strategy never changes the result."""

    def test_jobs_kwarg_accepted_everywhere(self):
        # Every registered runner must accept the unified surface, even
        # single-cell ones like "faults".
        import inspect

        from repro.core.run import RUNNERS, _load

        _load()
        for name, fn in RUNNERS.items():
            params = inspect.signature(fn).parameters
            for expected in ("scale", "seed", "trace", "jobs"):
                assert expected in params, (name, expected)

    def test_jobs_does_not_change_result_or_fingerprint(self):
        serial = run("fig6a", scale=SCALE, stream_counts=(4,),
                     policies=("ondemand",), ndisks=2)
        fanned = run("fig6a", scale=SCALE, jobs=2, stream_counts=(4,),
                     policies=("ondemand",), ndisks=2)
        assert serial.fingerprint == fanned.fingerprint
        assert serial.payload == fanned.payload
        assert serial.phases == fanned.phases

    def test_legacy_io_alias_warns_and_matches(self):
        new = run("fig7", scale=SCALE, ndisks=2, policies=("ondemand",),
                  collectives=(False,), execution="legacy")
        with pytest.warns(DeprecationWarning, match="legacy_io"):
            old = run("fig7", scale=SCALE, ndisks=2, policies=("ondemand",),
                      collectives=(False,), legacy_io=True)
        assert old.fingerprint == new.fingerprint
        assert old.payload == new.payload


class TestTraceCLI:
    def test_trace_chrome_output(self, tmp_path, capsys):
        out = tmp_path / "fig6a.json"
        rc = main([
            "trace", "fig6a", "--scale", "0.05", "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"], "chrome trace must contain events"
        for e in doc["traceEvents"][:50]:
            assert e["ph"] == "X"
            assert isinstance(e["ts"], (int, float))
        printed = capsys.readouterr().out
        assert "layer breakdown" in printed
        assert "disk" in printed
        assert "phases" in printed

    def test_trace_jsonl_output(self, tmp_path, capsys):
        out = tmp_path / "fig6a.jsonl"
        rc = main([
            "trace", "fig6a", "--scale", "0.05", "--format", "jsonl",
            "--out", str(out),
        ])
        assert rc == 0
        lines = [ln for ln in out.read_text().splitlines() if ln.strip()]
        assert lines
        rec = json.loads(lines[0])
        assert {"t", "layer", "op", "dur"} <= set(rec)
