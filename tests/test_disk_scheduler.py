"""I/O scheduler behaviour: sorting, merging, batch limits."""

import pytest

from repro.config import SchedulerParams
from repro.disk.model import BlockRequest
from repro.disk.scheduler import ElevatorScheduler, FifoScheduler, make_scheduler


def starts(reqs):
    return [r.start for r in reqs]


class TestFifo:
    def test_preserves_arrival_order(self):
        s = FifoScheduler(SchedulerParams(kind="fifo", merge_gap_blocks=0))
        out = s.arrange([BlockRequest(10, 1), BlockRequest(5, 1), BlockRequest(20, 1)])
        assert starts(out) == [10, 5, 20]

    def test_merges_only_adjacent_in_order(self):
        s = FifoScheduler(SchedulerParams(kind="fifo", merge_gap_blocks=0))
        out = s.arrange([BlockRequest(0, 2), BlockRequest(2, 3), BlockRequest(1, 1)])
        # 0+2 merges with 2+3; backwards request stays separate.
        assert [(r.start, r.nblocks) for r in out] == [(0, 5), (1, 1)]


class TestElevator:
    def test_sorts_by_start(self):
        s = ElevatorScheduler(SchedulerParams(merge_gap_blocks=0))
        out = s.arrange([BlockRequest(30, 1), BlockRequest(10, 1), BlockRequest(20, 1)])
        assert starts(out) == [10, 20, 30]

    def test_merges_contiguous(self):
        s = ElevatorScheduler(SchedulerParams(merge_gap_blocks=0))
        out = s.arrange([BlockRequest(4, 4), BlockRequest(0, 4)])
        assert [(r.start, r.nblocks) for r in out] == [(0, 8)]

    def test_merge_gap_covers_small_holes(self):
        s = ElevatorScheduler(SchedulerParams(merge_gap_blocks=8))
        out = s.arrange([BlockRequest(0, 4), BlockRequest(10, 4)])
        # gap of 6 <= 8: merged into one skip-transfer covering [0, 14).
        assert [(r.start, r.nblocks) for r in out] == [(0, 14)]

    def test_gap_beyond_limit_not_merged(self):
        s = ElevatorScheduler(SchedulerParams(merge_gap_blocks=8))
        out = s.arrange([BlockRequest(0, 4), BlockRequest(20, 4)])
        assert len(out) == 2

    def test_reads_and_writes_never_merge(self):
        s = ElevatorScheduler(SchedulerParams(merge_gap_blocks=8))
        out = s.arrange(
            [BlockRequest(0, 4, is_write=True), BlockRequest(4, 4, is_write=False)]
        )
        assert len(out) == 2

    def test_batch_limit_bounds_sorting_window(self):
        # Two descending requests in separate windows cannot be reordered
        # across the window boundary.
        s = ElevatorScheduler(SchedulerParams(merge_gap_blocks=0, batch_limit=1))
        out = s.arrange([BlockRequest(30, 1), BlockRequest(10, 1)])
        assert starts(out) == [30, 10]

    def test_large_batch_splits_and_sorts_within_windows(self):
        s = ElevatorScheduler(SchedulerParams(merge_gap_blocks=0, batch_limit=2))
        out = s.arrange(
            [BlockRequest(30, 1), BlockRequest(10, 1), BlockRequest(20, 1), BlockRequest(0, 1)]
        )
        assert starts(out) == [10, 30, 0, 20]


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_scheduler(SchedulerParams(kind="fifo")), FifoScheduler)
        assert isinstance(make_scheduler(SchedulerParams(kind="elevator")), ElevatorScheduler)

    def test_metrics_flow(self):
        s = make_scheduler(SchedulerParams())
        s.arrange([BlockRequest(0, 1), BlockRequest(1, 1)])
        assert s.metrics.count("scheduler.batches") == 1
        assert s.metrics.count("scheduler.requests_in") == 2
        assert s.metrics.count("scheduler.requests_out") == 1  # merged
