"""Workload generators: traces, micro-benchmark, IOR, BTIO, sizes."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fs.dataplane import DataPlane
from repro.units import KiB, MiB
from repro.workloads.base import ReadOp, StreamProgram, WriteOp, run_data_phase
from repro.workloads.btio import BTIOBenchmark
from repro.workloads.filesizes import kernel_tree_sizes, tarball_bytes
from repro.workloads.ior import IORBenchmark
from repro.workloads.streams import SharedFileMicrobench
from repro.workloads.traces import synth_checkpoint_trace, trace_streams

from tests.conftest import small_config


def make_plane(policy="ondemand") -> DataPlane:
    return DataPlane(small_config(policy=policy))


class TestTraces:
    def test_covers_every_region_exactly(self):
        recs = synth_checkpoint_trace(4, region_bytes=64 * KiB, request_bytes=16 * KiB)
        per_proc = trace_streams(recs)
        assert set(per_proc) == {0, 1, 2, 3}
        for p, rs in per_proc.items():
            assert sum(r.nbytes for r in rs) == 64 * KiB
            assert min(r.offset for r in rs) == p * 64 * KiB

    def test_round_robin_interleave(self):
        recs = synth_checkpoint_trace(3, region_bytes=32 * KiB, request_bytes=16 * KiB)
        assert [r.proc for r in recs[:3]] == [0, 1, 2]

    def test_per_proc_order_is_sequential(self):
        recs = synth_checkpoint_trace(2, region_bytes=64 * KiB, request_bytes=16 * KiB)
        for p, rs in trace_streams(recs).items():
            offsets = [r.offset for r in rs]
            assert offsets == sorted(offsets)

    def test_jitter_preserves_volume(self):
        recs = synth_checkpoint_trace(
            4, region_bytes=64 * KiB, request_bytes=16 * KiB, jitter=0.5, seed=7
        )
        assert sum(r.nbytes for r in recs) == 4 * 64 * KiB

    def test_uneven_tail_request(self):
        recs = synth_checkpoint_trace(1, region_bytes=20 * KiB, request_bytes=16 * KiB)
        assert [r.nbytes for r in recs] == [16 * KiB, 4 * KiB]

    def test_validation(self):
        with pytest.raises(ConfigError):
            synth_checkpoint_trace(0, 1, 1)
        with pytest.raises(ConfigError):
            synth_checkpoint_trace(1, 1, 1, jitter=2.0)


class TestRunDataPhase:
    def test_counts_bytes_and_ops(self):
        plane = make_plane()
        f = plane.create_file("/f")
        prog = StreamProgram(1, [WriteOp(f, 0, 64 * KiB), ReadOp(f, 0, 64 * KiB)])
        res = run_data_phase(plane, [prog], skip_probability=0.0)
        assert res.bytes_moved == 128 * KiB
        assert res.ops == 2
        assert res.elapsed > 0.0

    def test_empty_programs(self):
        plane = make_plane()
        res = run_data_phase(plane, [], skip_probability=0.0)
        assert res.bytes_moved == 0

    def test_concurrent_streams_all_complete(self):
        plane = make_plane()
        f = plane.create_file("/f")
        progs = [
            StreamProgram(s, [WriteOp(f, s * 256 * KiB + i * 16 * KiB, 16 * KiB) for i in range(16)])
            for s in range(4)
        ]
        res = run_data_phase(plane, progs, skip_probability=0.0)
        assert res.ops == 64
        assert f.written_blocks == 256

    def test_jitter_does_not_lose_ops(self):
        plane = make_plane()
        f = plane.create_file("/f")
        progs = [
            StreamProgram(s, [WriteOp(f, (s * 16 + i) * 16 * KiB, 16 * KiB) for i in range(16)])
            for s in range(4)
        ]
        res = run_data_phase(plane, progs, skip_probability=0.3, seed=3)
        assert res.ops == 64

    def test_bad_args(self):
        plane = make_plane()
        with pytest.raises(ValueError):
            run_data_phase(plane, [], skip_probability=1.5)
        with pytest.raises(ValueError):
            run_data_phase(plane, [], read_buffer_blocks=0)


class TestSharedFileMicrobench:
    def test_phase1_writes_whole_file(self):
        plane = make_plane()
        mb = SharedFileMicrobench(nstreams=4, file_bytes=8 * MiB, write_request_bytes=16 * KiB)
        f = mb.create_shared_file(plane)
        res = mb.phase1_write(plane, f)
        assert res.bytes_moved == 8 * MiB
        assert f.written_blocks == 2048

    def test_phase2_reads_whole_file(self):
        plane = make_plane()
        mb = SharedFileMicrobench(
            nstreams=4, file_bytes=8 * MiB, write_request_bytes=16 * KiB, segments=64
        )
        f = mb.create_shared_file(plane)
        mb.phase1_write(plane, f)
        plane.close_file(f)
        res = mb.phase2_read(plane, f)
        assert res.bytes_moved == 8 * MiB

    def test_file_must_divide_among_streams(self):
        with pytest.raises(ConfigError):
            SharedFileMicrobench(nstreams=3, file_bytes=8 * MiB)

    def test_run_returns_both_phases(self):
        plane = make_plane()
        mb = SharedFileMicrobench(nstreams=4, file_bytes=4 * MiB, segments=64)
        w, r = mb.run(plane)
        assert w.bytes_moved == r.bytes_moved == 4 * MiB


class TestIOR:
    def test_each_proc_covers_its_share(self):
        bench = IORBenchmark(nprocs=4, file_bytes=8 * MiB, request_bytes=64 * KiB)
        plane = make_plane()
        f = bench.create_file(plane)
        res = bench.write_phase(plane, f)
        assert res.bytes_moved == 8 * MiB
        assert f.written_blocks == 2048

    def test_collective_uses_fewer_streams(self):
        nc = IORBenchmark(nprocs=8, file_bytes=8 * MiB, collective=False)
        co = IORBenchmark(nprocs=8, file_bytes=8 * MiB, collective=True, aggregators=2)
        f_nc = nc._programs(make_plane().create_file("/x"), write=True)
        f_co = co._programs(make_plane().create_file("/y"), write=True)
        assert len(f_nc) == 8
        assert len(f_co) == 2

    def test_run_combines_phases(self):
        bench = IORBenchmark(nprocs=4, file_bytes=4 * MiB)
        res = bench.run(make_plane())
        assert res.bytes_moved == 8 * MiB  # write + read back

    def test_validation(self):
        with pytest.raises(ConfigError):
            IORBenchmark(nprocs=3, file_bytes=1 * MiB + 1)


class TestBTIO:
    def test_write_pattern_covers_file(self):
        bench = BTIOBenchmark(
            nprocs=4, step_bytes_per_proc=256 * KiB, steps=2,
            chunk_bytes=8 * KiB, subrun_bytes=64 * KiB,
        )
        plane = make_plane()
        f = bench.create_file(plane)
        res = bench.write_phase(plane, f)
        assert res.bytes_moved == bench.file_bytes
        assert f.written_blocks * 4096 == bench.file_bytes

    def test_subruns_are_strided_across_procs(self):
        bench = BTIOBenchmark(
            nprocs=4, step_bytes_per_proc=256 * KiB, steps=1,
            chunk_bytes=8 * KiB, subrun_bytes=64 * KiB,
        )
        plane = make_plane()
        f = bench.create_file(plane)
        progs = bench._write_programs(f)
        # Proc 0's consecutive sub-runs are not logically adjacent.
        ops = list(progs[0].ops)
        row_starts = sorted({op.offset // (64 * KiB) for op in ops})
        gaps = [b - a for a, b in zip(row_starts, row_starts[1:])]
        # Diagonal rotation: consecutive rows of one proc are nprocs+1
        # row-slots apart — strided, never adjacent.
        assert all(g == 5 for g in gaps)

    def test_requires_square_proc_count(self):
        with pytest.raises(ConfigError):
            BTIOBenchmark(nprocs=6)

    def test_alignment_validation(self):
        with pytest.raises(ConfigError):
            BTIOBenchmark(nprocs=4, subrun_bytes=10 * KiB, chunk_bytes=8 * KiB)

    def test_read_mirrors_write_decomposition(self):
        bench = BTIOBenchmark(
            nprocs=4, step_bytes_per_proc=256 * KiB, steps=1,
            chunk_bytes=8 * KiB, subrun_bytes=64 * KiB,
        )
        plane = make_plane()
        f = bench.create_file(plane)
        bench.write_phase(plane, f)
        plane.close_file(f)
        res = bench.read_phase(plane, f)
        assert res.bytes_moved == bench.file_bytes


class TestFileSizes:
    def test_deterministic_per_seed(self):
        a = kernel_tree_sizes(100, seed=1)
        b = kernel_tree_sizes(100, seed=1)
        c = kernel_tree_sizes(100, seed=2)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_bounded(self):
        sizes = kernel_tree_sizes(5000, seed=0)
        assert sizes.min() >= 64
        assert sizes.max() <= 2 * 1024 * 1024

    def test_right_skewed_small_median(self):
        sizes = kernel_tree_sizes(5000, seed=0)
        assert np.median(sizes) < 16 * KiB
        assert sizes.mean() > np.median(sizes)

    def test_tarball_compresses(self):
        sizes = kernel_tree_sizes(100, seed=0)
        assert tarball_bytes(sizes) < int(sizes.sum())

    def test_validation(self):
        with pytest.raises(ConfigError):
            kernel_tree_sizes(0)
