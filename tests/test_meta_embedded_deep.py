"""Deeper embedded-directory behaviour: spill dynamics, content growth
patterns, fragmentation degree, offset reuse, and getlayout footprints."""

import pytest

from repro.config import DiskParams, MetaParams
from repro.meta.embedded_layout import EmbeddedLayout
from repro.meta.inumber import decode_ino
from repro.meta.mfs import MetadataFS


def make_layout(**meta_kw) -> EmbeddedLayout:
    params = MetaParams(
        layout="embedded",
        block_groups=4,
        blocks_per_group=2048,
        inodes_per_group=256,
        journal_blocks=64,
        dir_prealloc_blocks=2,
        dir_prealloc_scale=2,
        lazy_free_batch=4,
        **meta_kw,
    )
    mfs = MetadataFS(params, DiskParams(capacity_blocks=16384))
    return EmbeddedLayout(params, mfs)


class TestContentGrowth:
    def test_geometric_run_sizes(self):
        layout = make_layout()
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        spb = layout.slots_per_block
        # Fill far past the initial preallocation.
        for i in range(spb * 2 * 8):
            layout.create_file(d, f"f{i:05d}", now=0.0)
        sizes = [c for _, c in d.content_runs]
        # First run is the initial preallocation; each growth doubles the
        # total (scale 2), so run sizes are non-decreasing.
        assert sizes[0] == 2
        assert sizes == sorted(sizes)
        assert sum(sizes) * spb >= spb * 16

    def test_offsets_are_dense_and_unique(self):
        layout = make_layout()
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        inos = [layout.create_file(d, f"f{i}", now=0.0)[0].ino for i in range(50)]
        offsets = [decode_ino(i)[1] for i in inos]
        assert sorted(offsets) == list(range(50))

    def test_content_reads_cover_only_used_blocks(self):
        layout = make_layout()
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        spb = layout.slots_per_block
        for i in range(spb + 1):  # just past the first block
            layout.create_file(d, f"f{i}", now=0.0)
        reads = layout._content_reads(d)
        assert sum(c for _, c in reads) == 2  # two used blocks, not the
        # whole preallocated run


class TestFragmentationDegree:
    def test_degree_tracks_records_per_file(self):
        layout = make_layout()
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        for i in range(4):
            layout.create_file(d, f"f{i}", now=0.0)
        assert d.fragmentation_degree == 0.0
        for i in range(4):
            layout.set_extent_records(d, f"f{i}", 6)
        assert d.fragmentation_degree == pytest.approx(6.0)
        layout.delete_file(d, "f0")
        assert d.fragmentation_degree == pytest.approx(6.0)  # 18 records / 3

    def test_degree_resets_with_truncate(self):
        layout = make_layout()
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        layout.create_file(d, "f", now=0.0)
        layout.set_extent_records(d, "f", 100)
        layout.set_extent_records(d, "f", 0)
        assert d.fragmentation_degree == 0.0

    def test_spill_grows_and_shrinks_with_records(self):
        layout = make_layout()
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        layout.create_file(d, "f", now=0.0)
        tail = layout.params.inode_tail_extents
        per_block = layout.records_per_block
        layout.set_extent_records(d, "f", tail + per_block + 1)
        inode, _ = layout.stat(d, "f")
        assert len(inode.spill_blocks) == 2
        layout.set_extent_records(d, "f", tail + 1)
        inode, _ = layout.stat(d, "f")
        assert len(inode.spill_blocks) == 1

    def test_delete_frees_spill_blocks(self):
        layout = make_layout()
        free0 = layout.mfs.free_data_blocks
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        layout.create_file(d, "f", now=0.0)
        layout.set_extent_records(d, "f", 10_000)
        assert layout.mfs.free_data_blocks < free0 - 2
        layout.delete_file(d, "f")
        # Spill blocks returned; only the directory content remains held.
        held = free0 - layout.mfs.free_data_blocks
        assert held == d.content_blocks


class TestGetlayoutFootprint:
    def test_spilled_mapping_adds_reads(self):
        layout = make_layout()
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        layout.create_file(d, "small", now=0.0)
        layout.create_file(d, "large", now=0.0)
        layout.set_extent_records(d, "small", 2)
        layout.set_extent_records(
            d, "large", layout.params.inode_tail_extents + 1
        )
        _, plan_small = layout.getlayout(d, "small")
        _, plan_large = layout.getlayout(d, "large")
        assert plan_large.read_block_count() == plan_small.read_block_count() + 1

    def test_readdir_stat_includes_spills(self):
        layout = make_layout()
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        layout.create_file(d, "f", now=0.0)
        _, plan_before = layout.readdir_stat(d)
        layout.set_extent_records(d, "f", layout.params.inode_tail_extents + 1)
        _, plan_after = layout.readdir_stat(d)
        assert plan_after.read_block_count() == plan_before.read_block_count() + 1


class TestOffsetReuse:
    def test_lazy_freed_offsets_recycle_before_growth(self):
        layout = make_layout()
        d, _ = layout.create_dir(layout.root, "d", now=0.0)
        for i in range(8):
            layout.create_file(d, f"f{i}", now=0.0)
        blocks_before = d.content_blocks
        for i in range(4):  # exactly one lazy-free batch
            layout.delete_file(d, f"f{i}")
        for i in range(4):
            layout.create_file(d, f"g{i}", now=0.0)
        assert d.content_blocks == blocks_before  # no growth needed
        assert d.next_offset == 8  # recycled, not extended

    def test_rename_source_slot_is_lazy_freed(self):
        layout = make_layout()
        d1, _ = layout.create_dir(layout.root, "d1", now=0.0)
        d2, _ = layout.create_dir(layout.root, "d2", now=0.0)
        for i in range(3):
            layout.create_file(d1, f"f{i}", now=0.0)
        layout.rename(d1, "f0", d2, "f0", now=1.0)
        assert len(d1.pending_free) == 1
        layout.delete_file(d1, "f1")
        layout.delete_file(d1, "f2")
        assert len(d1.pending_free) == 3  # batch of 4 not yet reached
