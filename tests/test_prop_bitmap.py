"""Property-based tests for the block bitmap."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.block.bitmap import BlockBitmap
from repro.errors import NoSpaceError

SIZE = 300


class BitmapMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.bm = BlockBitmap(size=SIZE, bits_per_block=64)
        self.model: set[int] = set()

    @rule(
        count=st.integers(min_value=1, max_value=24),
        hint=st.integers(min_value=0, max_value=SIZE - 1),
    )
    def alloc_run(self, count: int, hint: int) -> None:
        try:
            start = self.bm.find_free_run(count, hint=hint)
        except NoSpaceError:
            # Verify there truly is no free run of that length.
            free = sorted(set(range(SIZE)) - self.model)
            longest = run = 0
            prev = None
            for b in free:
                run = run + 1 if prev is not None and b == prev + 1 else 1
                longest = max(longest, run)
                prev = b
            assert longest < count
            return
        blocks = set(range(start, start + count))
        assert not blocks & self.model
        self.bm.set_range(start, count)
        self.model |= blocks

    @rule(data=st.data())
    def free_some(self, data) -> None:
        if not self.model:
            return
        b = data.draw(st.sampled_from(sorted(self.model)))
        self.bm.clear_range(b, 1)
        self.model.discard(b)

    @invariant()
    def counts_match(self) -> None:
        assert self.bm.used_count == len(self.model)
        assert self.bm.free_count == SIZE - len(self.model)

    @invariant()
    def bits_match(self) -> None:
        for b in range(0, SIZE, 37):  # spot-check
            assert self.bm.is_used(b) == (b in self.model)


TestBitmapMachine = BitmapMachine.TestCase
TestBitmapMachine.settings = settings(max_examples=40, stateful_step_count=40)


@given(
    st.integers(min_value=1, max_value=SIZE),
    st.data(),
)
def test_find_free_run_result_is_actually_free(count, data):
    bm = BlockBitmap(size=SIZE, bits_per_block=64)
    # Pre-occupy a random pattern.
    mask = np.zeros(SIZE, dtype=bool)
    n_used = data.draw(st.integers(min_value=0, max_value=SIZE // 2))
    idx = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=SIZE - 1),
            min_size=n_used,
            max_size=n_used,
            unique=True,
        )
    )
    mask[idx] = True
    bm.occupy_mask(mask)
    hint = data.draw(st.integers(min_value=0, max_value=SIZE - 1))
    try:
        start = bm.find_free_run(count, hint=hint)
    except NoSpaceError:
        return
    assert bm.is_range_free(start, count)


@given(st.data())
def test_dirty_blocks_cover_exact_bitmap_blocks(data):
    bm = BlockBitmap(size=SIZE, bits_per_block=64)
    start = data.draw(st.integers(min_value=0, max_value=SIZE - 1))
    count = data.draw(st.integers(min_value=1, max_value=SIZE - start))
    dirty = bm.set_range(start, count)
    assert dirty == sorted({b // 64 for b in range(start, start + count)})
