"""Property test: readv/writev are equivalent to the scalar-op loop.

The PVFS list-I/O contract: a scatter-gather request must be purely an
*optimization* — same extents on disk, same file size, same per-byte
metrics, and (for lists of disjoint regions) the same simulated service
time when the scalar loop's requests are gathered into one submitted
batch.  The only allowed differences are fewer request objects
(cross-region coalescing) and the ``fs.listio_*`` counters.  Checked
under both execution profiles.

Overlapping regions keep the layout/metrics equivalence but not the
single-batch service identity: the scalar loop emits duplicate physical
runs for the overlap, which the elevator cannot merge (negative gap),
while one list request maps the final layout once.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.dataplane import DataPlane
from repro.units import KiB

from tests.conftest import small_config

BS = 4 * KiB

#: Arbitrary regions inside a ~1 MiB window: offsets on and off block
#: boundaries, lengths sub-block to multi-stripe-unit, overlaps allowed.
_REGION = st.tuples(
    st.integers(min_value=0, max_value=255 * BS),
    st.integers(min_value=1, max_value=8 * BS),
)
_REGIONS = st.lists(_REGION, min_size=1, max_size=8)
_EXECUTION = st.sampled_from(["batched", "legacy"])


@st.composite
def _disjoint_regions(draw):
    """Block-aligned regions with pairwise-disjoint block spans, in a
    random order (list I/O does not require sorted offsets)."""
    steps = draw(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(1, 8)),
            min_size=1,
            max_size=8,
        )
    )
    regions = []
    block = 0
    for gap, nblocks in steps:
        block += gap
        regions.append((block * BS, nblocks * BS))
        block += nblocks
    perm = draw(st.permutations(regions))
    return list(perm)


def _extent_tuples(f):
    return [
        [(e.logical, e.physical, e.length, e.unwritten) for e in smap]
        for smap in f.maps
    ]


def _covered_blocks(requests):
    out: set[int] = set()
    for r in requests:
        out.update(range(r.start, r.end))
    return out


@settings(max_examples=60, deadline=None)
@given(regions=_REGIONS, execution=_EXECUTION, stream=st.integers(0, 3))
def test_writev_layout_oracle(regions, execution, stream):
    """writev(list) ≡ the in-order loop of write(region) calls: identical
    extents, size, per-byte counters and covered blocks — even when
    regions overlap."""
    loop = DataPlane(small_config(execution=execution))
    vec = DataPlane(small_config(execution=execution))
    fl = loop.create_file("/f")
    fv = vec.create_file("/f")
    scalar_reqs = []
    for off, n in regions:
        scalar_reqs.extend(loop.write(fl, stream, off, n))
    vec_reqs = vec.writev(fv, stream, regions)
    assert _extent_tuples(fl) == _extent_tuples(fv)
    assert fl.size_bytes == fv.size_bytes
    assert fl.mapped_blocks == fv.mapped_blocks
    for name in ("fs.writes", "fs.bytes_written", "fs.buffered_writes"):
        assert loop.metrics.count(name) == vec.metrics.count(name)
    assert _covered_blocks(scalar_reqs) == _covered_blocks(vec_reqs)


@settings(max_examples=60, deadline=None)
@given(regions=_disjoint_regions(), execution=_EXECUTION, stream=st.integers(0, 3))
def test_writev_service_time_oracle(regions, execution, stream):
    """For disjoint regions, gathering the scalar loop's requests into one
    batch costs exactly what the one list request costs: the elevator
    re-derives every merge _emit already performed."""
    loop = DataPlane(small_config(execution=execution))
    vec = DataPlane(small_config(execution=execution))
    fl = loop.create_file("/f")
    fv = vec.create_file("/f")
    scalar_reqs = []
    for off, n in regions:
        scalar_reqs.extend(loop.write(fl, stream, off, n))
    vec_reqs = vec.writev(fv, stream, regions)
    assert _extent_tuples(fl) == _extent_tuples(fv)
    assert loop.array.submit_batch(scalar_reqs) == vec.array.submit_batch(vec_reqs)


@settings(max_examples=60, deadline=None)
@given(
    write_regions=_REGIONS,
    read_regions=_REGIONS,
    execution=_EXECUTION,
)
def test_readv_oracle(write_regions, read_regions, execution):
    """readv(list) ≡ the in-order loop of read(region) calls, including
    over holes, after an arbitrary writev-laid-down layout.  Overlapping
    read regions keep this coverage/counter equivalence but not the
    service identity (the loop re-reads the overlap as duplicate runs
    the elevator cannot merge), so service time is checked separately
    below on disjoint regions."""
    plane = DataPlane(small_config(execution=execution))
    f = plane.create_file("/f")
    plane.writev(f, 0, write_regions)
    scalar_reqs = []
    for off, n in read_regions:
        scalar_reqs.extend(plane.read(f, off, n))
    vec_reqs = plane.readv(f, read_regions)
    assert _covered_blocks(scalar_reqs) == _covered_blocks(vec_reqs)
    assert sum(r.nblocks for r in scalar_reqs) == sum(r.nblocks for r in vec_reqs)
    assert not any(r.is_write for r in vec_reqs)
    # Counters move per region on both sides.
    assert plane.metrics.count("fs.reads") == 2 * len(read_regions)
    assert plane.metrics.count("fs.bytes_read") == 2 * sum(
        n for _, n in read_regions
    )


@settings(max_examples=60, deadline=None)
@given(
    write_regions=_REGIONS,
    read_regions=_disjoint_regions(),
    execution=_EXECUTION,
)
def test_readv_service_time_oracle(write_regions, read_regions, execution):
    """For disjoint read regions, the gathered scalar batch and the one
    list request cost the same on fresh twin arrays (same head start,
    same elevator) — and move the same total block count."""
    plane = DataPlane(small_config(execution=execution))
    f = plane.create_file("/f")
    plane.writev(f, 0, write_regions)
    scalar_reqs = []
    for off, n in read_regions:
        scalar_reqs.extend(plane.read(f, off, n))
    vec_reqs = plane.readv(f, read_regions)
    assert _covered_blocks(scalar_reqs) == _covered_blocks(vec_reqs)
    assert sum(r.nblocks for r in scalar_reqs) == sum(r.nblocks for r in vec_reqs)
    twin_a = DataPlane(small_config(execution=execution))
    twin_b = DataPlane(small_config(execution=execution))
    assert twin_a.array.submit_batch(vec_reqs) == twin_b.array.submit_batch(
        scalar_reqs
    )
