"""Replication manager (§II.B InterferenceRemoval baseline)."""

import pytest

from repro.errors import ReproError
from repro.fs.dataplane import DataPlane
from repro.fs.replication import ReplicationManager
from repro.units import KiB, MiB
from repro.workloads.streams import SharedFileMicrobench

from tests.conftest import small_config


def fragmented_file(plane: DataPlane):
    """Create a shared file fragmented by 8 interleaved streams."""
    bench = SharedFileMicrobench(
        nstreams=8, file_bytes=8 * MiB, write_request_bytes=16 * KiB
    )
    f = bench.create_shared_file(plane)
    bench.phase1_write(plane, f)
    plane.close_file(f)
    return f


class TestReplication:
    def test_validation(self):
        plane = DataPlane(small_config(policy="reservation"))
        with pytest.raises(ReproError):
            ReplicationManager(plane, trigger_ratio=1.0)
        with pytest.raises(ReproError):
            ReplicationManager(plane, min_reads=0)

    def test_triggers_after_fragmented_reads(self):
        plane = DataPlane(small_config(policy="reservation"))
        f = fragmented_file(plane)
        mgr = ReplicationManager(plane, trigger_ratio=2.0, min_reads=4)
        for i in range(8):
            mgr.read(f, i * 256 * KiB, 256 * KiB)
        assert mgr.is_replicated(f)
        assert plane.metrics.count("replica.built") == 1

    def test_replica_reads_are_less_fragmented(self):
        plane = DataPlane(small_config(policy="reservation"))
        f = fragmented_file(plane)
        mgr = ReplicationManager(plane, trigger_ratio=2.0, min_reads=1)
        original = plane.read(f, 0, 1 * MiB)
        mgr.replicate(f)
        replica = mgr.read(f, 0, 1 * MiB)
        assert sum(r.nblocks for r in replica) == sum(r.nblocks for r in original)
        assert len(replica) < len(original)

    def test_replication_is_not_free(self):
        """The paper's §II.B point: the copy itself costs a full read of
        the fragmented original plus a full write."""
        plane = DataPlane(small_config(policy="reservation"))
        f = fragmented_file(plane)
        mgr = ReplicationManager(plane)
        requests = mgr.replicate(f)
        copied = sum(r.nblocks for r in requests if r.is_write)
        read_back = sum(r.nblocks for r in requests if not r.is_write)
        assert copied == f.written_blocks
        assert read_back == f.written_blocks

    def test_write_invalidates_replica(self):
        plane = DataPlane(small_config(policy="reservation"))
        f = fragmented_file(plane)
        mgr = ReplicationManager(plane)
        mgr.replicate(f)
        free_with_replica = plane.fsm.free_blocks
        mgr.write(f, 1, 0, 16 * KiB)
        assert not mgr.is_replicated(f)
        assert plane.fsm.free_blocks > free_with_replica  # replica freed
        assert plane.metrics.count("replica.invalidations") == 1

    def test_drop_replica_returns_all_blocks(self):
        plane = DataPlane(small_config(policy="reservation"))
        f = fragmented_file(plane)
        before = plane.fsm.free_blocks
        mgr = ReplicationManager(plane)
        mgr.replicate(f)
        assert plane.fsm.free_blocks == before - f.written_blocks
        mgr.drop_replica(f)
        assert plane.fsm.free_blocks == before

    def test_replica_covers_every_logical_block(self):
        plane = DataPlane(small_config(policy="reservation"))
        f = fragmented_file(plane)
        mgr = ReplicationManager(plane)
        mgr.replicate(f)
        requests = mgr.read(f, 0, 8 * MiB)
        assert sum(r.nblocks for r in requests) == f.written_blocks

    def test_mispredicted_replication_reclaims_nothing(self):
        """Trigger fires on the *last* read: pure overhead (the paper's
        'false predication of last IO timing')."""
        plane = DataPlane(small_config(policy="reservation"))
        f = fragmented_file(plane)
        mgr = ReplicationManager(plane, trigger_ratio=2.0, min_reads=8)
        total_blocks = 0
        for i in range(8):  # the 8th read triggers the copy, then we stop
            for r in mgr.read(f, i * 256 * KiB, 256 * KiB):
                total_blocks += r.nblocks
        useful = 8 * 64  # 8 reads of 64 blocks
        assert total_blocks >= useful + 2 * f.written_blocks  # copy overhead paid
        assert mgr.is_replicated(f)  # ...for nothing further
