"""Property-based oracles for the batched metadata execution path.

Two contracts, each checked against its scalar twin on random inputs:

- ``BufferCache.read_batch`` over an arbitrary read list is the scalar
  ``read`` loop — same total disk seconds (exact bits), same LRU and
  readahead end state, same counters, same disk head and busy time.  The
  domain is kept small relative to the cache capacity so warm fast-path
  hits, evictions, frontier crossings and past-capacity fallbacks all
  occur.

- ``Journal.log_batch`` is per-record ``log``/``commit`` at *every* crash
  point: committing exactly the records whose commit writes completed
  before the crash yields the same replay set, and the written request
  stream is identical block for block.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheParams, DiskParams, SchedulerParams
from repro.disk.cache import BufferCache
from repro.disk.disk import SimulatedDisk
from repro.meta.journal import Journal

CAPACITY = 192


def make_cache(capacity=48):
    disk = SimulatedDisk(DiskParams(capacity_blocks=CAPACITY), SchedulerParams())
    cache = BufferCache(
        CacheParams(
            capacity_blocks=capacity,
            readahead_init_blocks=4,
            readahead_max_blocks=16,
        ),
        disk,
    )
    return cache, disk


read_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=CAPACITY - 1),
        st.integers(min_value=1, max_value=12),
    ),
    min_size=1,
    max_size=40,
)


@given(read_lists)
@settings(max_examples=200, deadline=None)
def test_read_batch_is_the_scalar_read_loop(reads):
    c1, d1 = make_cache()
    c2, d2 = make_cache()
    t1 = c1.read_batch(reads)
    t2 = 0.0
    for start, nblocks in reads:
        t2 += c2.read(start, nblocks)
    c1._flush_moves()
    assert t1 == t2
    assert list(c1._lru) == list(c2._lru)
    assert list(c1._ra.items()) == list(c2._ra.items())
    assert dict(d1.metrics.raw_counters()) == dict(d2.metrics.raw_counters())
    assert d1.head == d2.head
    assert d1.busy_s == d2.busy_s


@given(read_lists, read_lists)
@settings(max_examples=100, deadline=None)
def test_consecutive_batches_compose(first, second):
    """Deferred LRU refreshes must survive a batch boundary: two batches
    equal one concatenated batch equal the scalar loop."""
    c1, d1 = make_cache()
    c2, d2 = make_cache()
    c1.read_batch(first)
    c1.read_batch(second)
    for start, nblocks in first + second:
        c2.read(start, nblocks)
    c1._flush_moves()
    assert list(c1._lru) == list(c2._lru)
    assert list(c1._ra.items()) == list(c2._ra.items())
    assert d1.busy_s == d2.busy_s


journal_entries = st.lists(
    st.tuples(
        st.lists(st.integers(min_value=0, max_value=500), max_size=4),
        st.integers(min_value=1, max_value=3),
    ),
    min_size=1,
    max_size=8,
)


@given(journal_entries, st.integers(min_value=4, max_value=9))
@settings(max_examples=200, deadline=None)
def test_log_batch_matches_per_record_log(entries, region):
    """Full completion: records, request stream and spans line up with a
    per-record log/commit sequence, including circular wrap-around."""
    jb = Journal(base_block=1, nblocks=region)
    js = Journal(base_block=1, nblocks=region)
    records, requests, spans = jb.log_batch(
        [(tuple(d), n) for d, n in entries]
    )
    scalar_requests = []
    for i, (dirties, nblocks) in enumerate(entries):
        record, reqs = js.log(tuple(dirties), nblocks)
        js.commit(record)
        lo, hi = spans[i]
        assert requests[lo:hi] == reqs
        assert (records[i].seq, records[i].block) == (record.seq, record.block)
        scalar_requests.extend(reqs)
        jb.commit(records[i])
    assert requests == scalar_requests
    assert jb.head_block == js.head_block
    assert jb.records_written == js.records_written
    assert [(r.seq, r.dirties) for r in jb.replay()] == [
        (r.seq, r.dirties) for r in js.replay()
    ]


@given(journal_entries, st.data())
@settings(max_examples=200, deadline=None)
def test_log_batch_replay_equal_at_every_crash_point(entries, data):
    """Crash after K commit writes: the group-commit journal replays exactly
    what the per-record journal would — completed records and nothing else."""
    entries = [(tuple(d), n) for d, n in entries]
    jb = Journal(base_block=1, nblocks=16)
    records, requests, spans = jb.log_batch(entries)
    crash_at = data.draw(
        st.integers(min_value=0, max_value=len(requests)), label="crash_at"
    )
    # Batched caller: acknowledge records whose whole span hit the platter.
    for record, (lo, hi) in zip(records, spans):
        if hi <= crash_at:
            jb.commit(record)

    # Scalar oracle: operations run one at a time; the op whose commit
    # write crashes stays uncommitted and nothing after it ever runs.
    js = Journal(base_block=1, nblocks=16)
    written = 0
    for dirties, nblocks in entries:
        record, reqs = js.log(dirties, nblocks)
        if written + len(reqs) <= crash_at:
            written += len(reqs)
            js.commit(record)
        else:
            break

    assert [(r.seq, r.block, r.dirties) for r in jb.replay()] == [
        (r.seq, r.block, r.dirties) for r in js.replay()
    ]
    # Torn/unreached records are discarded by truncation on both sides.
    jb.truncate()
    js.truncate()
    assert jb.replay() == js.replay() == []
