"""End-to-end data-path integration: cross-policy invariants."""

from __future__ import annotations

import pytest

from repro.alloc.registry import POLICY_NAMES
from repro.fs.dataplane import DataPlane
from repro.units import KiB, MiB
from repro.workloads.base import FsyncOp, ReadOp, StreamProgram, WriteOp, run_data_phase
from repro.workloads.streams import SharedFileMicrobench

from tests.conftest import small_config


@pytest.mark.parametrize("policy", POLICY_NAMES)
class TestEveryPolicyEndToEnd:
    def test_write_read_delete_cycle(self, policy):
        plane = DataPlane(small_config(policy=policy))
        free0 = plane.fsm.free_blocks
        f = plane.create_file("/f", expected_bytes=2 * MiB)
        programs = [
            StreamProgram(
                s,
                [WriteOp(f, s * 512 * KiB + i * 64 * KiB, 64 * KiB) for i in range(8)]
                + [FsyncOp(f)],
            )
            for s in range(4)
        ]
        res = run_data_phase(plane, programs, skip_probability=0.0)
        assert res.bytes_moved == 2 * MiB
        assert f.written_blocks == 512
        # Read everything back.
        rres = run_data_phase(
            plane,
            [StreamProgram(0, [ReadOp(f, i * 256 * KiB, 256 * KiB) for i in range(8)])],
            skip_probability=0.0,
        )
        assert rres.bytes_moved == 2 * MiB
        # Delete returns the file system to its starting occupancy.
        plane.close_file(f)
        plane.delete_file(f)
        assert plane.fsm.free_blocks == free0

    def test_no_block_shared_between_files(self, policy):
        plane = DataPlane(small_config(policy=policy))
        a = plane.create_file("/a", expected_bytes=1 * MiB)
        b = plane.create_file("/b", expected_bytes=1 * MiB)
        for f in (a, b):
            for i in range(4):
                plane.write(f, f.file_id, i * 128 * KiB, 128 * KiB)
            plane.fsync(f)
        blocks_a = {
            blk
            for m in a.maps
            for e in m
            for blk in range(e.physical, e.physical_end)
        }
        blocks_b = {
            blk
            for m in b.maps
            for e in m
            for blk in range(e.physical, e.physical_end)
        }
        assert not blocks_a & blocks_b


class TestMicrobenchAcrossPolicies:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for policy in ("vanilla", "reservation", "static", "ondemand"):
            plane = DataPlane(small_config(policy=policy, ndisks=2))
            mb = SharedFileMicrobench(
                nstreams=8, file_bytes=16 * MiB, write_request_bytes=16 * KiB,
                segments=128,
            )
            f = mb.create_shared_file(plane)
            mb.phase1_write(plane, f)
            plane.close_file(f)
            read = mb.phase2_read(plane, f)
            out[policy] = (read.mib_per_s, f.extent_count)
        return out

    def test_fragmentation_ordering(self, results):
        assert results["static"][1] <= results["ondemand"][1]
        assert results["ondemand"][1] < results["reservation"][1]

    def test_read_throughput_ordering(self, results):
        # At this miniature scale (8 streams) the interleave stride sits
        # inside the drive's skip-merge range, so reservation is barely
        # penalized — the full ordering is asserted at paper scale in
        # test_integration_shapes.  Here we only require sane bands.
        assert results["ondemand"][0] >= 0.5 * results["reservation"][0]
        assert results["static"][0] >= 0.75 * results["ondemand"][0]

    def test_vanilla_and_reservation_both_interleave(self, results):
        # Both place blocks in arrival order; extent counts are comparable.
        assert results["vanilla"][1] >= results["reservation"][1] * 0.5
