"""Allocation groups and the free-space manager (PAG directory)."""

import pytest

from repro.block.freespace import FreeSpaceManager
from repro.block.group import AllocationGroup
from repro.errors import AllocationError, NoSpaceError


class TestAllocationGroup:
    def test_geometry(self):
        g = AllocationGroup(index=2, base=1000, size=500, disk_index=1)
        assert g.end == 1500
        assert g.contains(1000)
        assert g.contains(1499)
        assert not g.contains(1500)

    def test_cursor_rotation_for_unhinted(self):
        g = AllocationGroup(0, 0, 1000, 0)
        s1, _ = g.allocate(10)
        s2, _ = g.allocate(10)
        assert s2 == s1 + 10

    def test_hinted_allocation_does_not_move_cursor(self):
        g = AllocationGroup(0, 0, 1000, 0)
        s1, _ = g.allocate(10)            # cursor -> 10
        g.allocate(10, hint=500)          # window reservation elsewhere
        s3, _ = g.allocate(10)            # next unhinted continues at 20
        assert s3 == s1 + 10

    def test_hint_outside_group_falls_back(self):
        g = AllocationGroup(0, 1000, 500, 0)
        start, got = g.allocate(10, hint=99999)
        assert g.contains(start)

    def test_utilization(self):
        g = AllocationGroup(0, 0, 100, 0)
        g.allocate(25)
        assert g.utilization == pytest.approx(0.25)

    def test_allocate_exact_and_release(self):
        g = AllocationGroup(0, 0, 100, 0)
        g.allocate_exact(50, 10)
        assert g.free_blocks == 90
        g.release(50, 10)
        assert g.free_blocks == 100


class TestFreeSpaceManager:
    @pytest.fixture
    def fsm(self) -> FreeSpaceManager:
        return FreeSpaceManager(ndisks=2, blocks_per_disk=1000, pags_per_disk=2)

    def test_group_layout(self, fsm):
        assert len(fsm.groups) == 4
        assert [g.base for g in fsm.groups] == [0, 500, 1000, 1500]
        assert [g.disk_index for g in fsm.groups] == [0, 0, 1, 1]

    def test_group_of(self, fsm):
        assert fsm.group_of(0).index == 0
        assert fsm.group_of(499).index == 0
        assert fsm.group_of(500).index == 1
        assert fsm.group_of(1999).index == 3

    def test_groups_on_disk(self, fsm):
        assert [g.index for g in fsm.groups_on_disk(1)] == [2, 3]

    def test_allocate_in_group(self, fsm):
        start, got = fsm.allocate_in_group(2, 10)
        assert fsm.group_of(start).index == 2
        assert got == 10

    def test_fallback_same_disk_first(self, fsm):
        # Fill group 0 completely; allocation should fall to group 1
        # (same disk), not group 2.
        fsm.groups[0].allocate(500)
        start, _ = fsm.allocate_in_group(0, 10)
        assert fsm.group_of(start).index == 1
        assert fsm.metrics.count("fsm.group_fallbacks") == 1

    def test_fallback_to_other_disk(self, fsm):
        fsm.groups[0].allocate(500)
        fsm.groups[1].allocate(500)
        start, _ = fsm.allocate_in_group(0, 10)
        assert fsm.group_of(start).disk_index == 1

    def test_array_full(self, fsm):
        for g in fsm.groups:
            g.allocate(500)
        with pytest.raises(NoSpaceError):
            fsm.allocate_in_group(0, 1)

    def test_allocate_near(self, fsm):
        start, got = fsm.allocate_near(1200, 10)
        assert start == 1200

    def test_allocate_exact_cross_group_rejected(self, fsm):
        with pytest.raises(AllocationError):
            fsm.allocate_exact(495, 10)

    def test_free_spanning_groups(self, fsm):
        fsm.allocate_exact(400, 100)
        fsm.allocate_exact(500, 100)
        fsm.free(400, 200)  # spans the group-0/group-1 boundary
        assert fsm.free_blocks == fsm.total_blocks

    def test_utilization(self, fsm):
        fsm.allocate_in_group(0, 500)
        assert fsm.utilization == pytest.approx(0.25)

    def test_geometry_validation(self):
        with pytest.raises(AllocationError):
            FreeSpaceManager(ndisks=1, blocks_per_disk=1000, pags_per_disk=3)
