"""Free-extent set: allocation passes, coalescing, invariants."""

import pytest

from repro.block.freelist import FreeExtentSet
from repro.errors import AllocationError, NoSpaceError


@pytest.fixture
def fes() -> FreeExtentSet:
    return FreeExtentSet(base=0, size=1000)


class TestBasics:
    def test_starts_fully_free(self, fes):
        assert fes.free_blocks == 1000
        assert fes.run_count == 1
        assert fes.largest_run == 1000

    def test_invalid_region_rejected(self):
        with pytest.raises(AllocationError):
            FreeExtentSet(base=-1, size=10)
        with pytest.raises(AllocationError):
            FreeExtentSet(base=0, size=0)

    def test_is_free(self, fes):
        assert fes.is_free(0, 1000)
        fes.allocate_exact(100, 50)
        assert not fes.is_free(100, 1)
        assert not fes.is_free(99, 2)
        assert fes.is_free(150, 10)


class TestAllocateExact:
    def test_middle_split(self, fes):
        fes.allocate_exact(100, 50)
        assert fes.free_blocks == 950
        assert fes.run_count == 2
        assert fes.runs() == [(0, 100), (150, 850)]

    def test_prefix(self, fes):
        fes.allocate_exact(0, 10)
        assert fes.runs() == [(10, 990)]

    def test_suffix(self, fes):
        fes.allocate_exact(990, 10)
        assert fes.runs() == [(0, 990)]

    def test_double_allocation_rejected(self, fes):
        fes.allocate_exact(0, 10)
        with pytest.raises(NoSpaceError):
            fes.allocate_exact(5, 10)


class TestAllocateNear:
    def test_hint_inside_free_run(self, fes):
        start, got = fes.allocate_near(500, 10)
        assert (start, got) == (500, 10)

    def test_hint_in_used_space_finds_next_run(self, fes):
        fes.allocate_exact(500, 100)
        start, got = fes.allocate_near(550, 10)
        assert start == 600  # first run at/after the hint
        assert got == 10

    def test_wraps_below_hint_when_tail_full(self, fes):
        fes.allocate_exact(500, 500)
        start, got = fes.allocate_near(700, 10)
        assert start == 0

    def test_degrades_to_largest_run(self, fes):
        # Free space: [0,10) and [20,25): ask for 100, get the 10-run.
        fes.allocate_exact(10, 10)
        fes.allocate_exact(25, 975)
        start, got = fes.allocate_near(0, 100)
        assert (start, got) == (0, 10)

    def test_minimum_respected(self, fes):
        fes.allocate_exact(10, 985)  # leaves [0,10) and [995,1000)
        with pytest.raises(NoSpaceError):
            fes.allocate_near(0, 100, minimum=50)

    def test_exhaustion(self, fes):
        fes.allocate_exact(0, 1000)
        with pytest.raises(NoSpaceError):
            fes.allocate_near(0, 1)

    def test_bad_count(self, fes):
        with pytest.raises(AllocationError):
            fes.allocate_near(0, 0)


class TestFree:
    def test_free_coalesces_both_sides(self, fes):
        fes.allocate_exact(100, 300)
        fes.free(200, 100)          # island between two used ranges
        assert fes.run_count == 3
        fes.free(100, 100)          # bridges [0,100) and [200,300)
        assert fes.run_count == 2
        fes.free(300, 100)          # bridges everything
        assert fes.runs() == [(0, 1000)]

    def test_double_free_rejected(self, fes):
        fes.allocate_exact(100, 10)
        fes.free(100, 10)
        with pytest.raises(AllocationError):
            fes.free(100, 10)

    def test_free_outside_region_rejected(self, fes):
        with pytest.raises(AllocationError):
            fes.free(999, 2)

    def test_partial_free(self, fes):
        fes.allocate_exact(0, 100)
        fes.free(10, 20)
        assert fes.is_free(10, 20)
        assert not fes.is_free(0, 10)

    def test_validate_passes_after_churn(self, fes):
        fes.allocate_exact(0, 500)
        fes.free(100, 100)
        fes.free(300, 50)
        fes.allocate_near(120, 30)
        fes.validate()
