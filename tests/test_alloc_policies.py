"""Allocation policies: vanilla, reservation, static, delayed + registry."""

import pytest

from repro.alloc.base import AllocTarget, PhysicalRun
from repro.alloc.delayed import DelayedPolicy, _coalesce
from repro.alloc.registry import POLICY_NAMES, make_policy
from repro.alloc.reservation import ReservationPolicy
from repro.alloc.static import StaticPolicy
from repro.alloc.vanilla import VanillaPolicy
from repro.alloc.window import Window
from repro.block.freespace import FreeSpaceManager
from repro.config import AllocPolicyParams
from repro.errors import AllocationError, ConfigError


def make_fsm() -> FreeSpaceManager:
    return FreeSpaceManager(ndisks=2, blocks_per_disk=4096, pags_per_disk=2)


def target(group=0) -> AllocTarget:
    return AllocTarget(group_index=group, slot=0, width=1, stripe_blocks=64)


def covered(runs: list[PhysicalRun]) -> int:
    return sum(r.length for r in runs if not r.unwritten)


class TestWindow:
    def test_covers(self):
        w = Window(logical=10, physical=100, length=8)
        assert w.covers(10)
        assert w.covers(10, 8)
        assert not w.covers(10, 9)
        assert not w.covers(9)

    def test_physical_for(self):
        w = Window(logical=10, physical=100, length=8)
        assert w.physical_for(13) == 103

    def test_consume(self):
        w = Window(logical=0, physical=100, length=8)
        w.consume_to(5)
        assert w.remaining == 3
        assert w.next_logical == 5
        assert w.next_physical == 105
        w.consume_to(3)  # high-water: no going back
        assert w.remaining == 3
        w.consume_to(8)
        assert w.exhausted

    def test_consume_past_end_rejected(self):
        with pytest.raises(AllocationError):
            Window(logical=0, physical=0, length=4).consume_to(5)


class TestVanilla:
    def test_allocates_exact_count(self):
        p = VanillaPolicy(AllocPolicyParams(policy="vanilla"), make_fsm())
        runs = p.allocate(1, 0, target(), dlocal=0, count=10)
        assert covered(runs) == 10

    def test_concurrent_streams_interleave(self):
        """The Figure 1(a) pathology: arrival order dictates placement."""
        p = VanillaPolicy(AllocPolicyParams(policy="vanilla"), make_fsm())
        a = p.allocate(1, 100, target(), dlocal=0, count=2)
        b = p.allocate(1, 200, target(), dlocal=100, count=2)
        a2 = p.allocate(1, 100, target(), dlocal=2, count=2)
        # Stream 100's second chunk is NOT adjacent to its first.
        assert a2[0].physical == b[0].physical + 2
        assert a2[0].physical != a[0].physical + 2


class TestReservation:
    def make(self, blocks=16) -> ReservationPolicy:
        return ReservationPolicy(
            AllocPolicyParams(policy="reservation", reservation_blocks=blocks),
            make_fsm(),
        )

    def test_pool_hands_out_arrival_order(self):
        p = self.make()
        a = p.allocate(1, 100, target(), dlocal=0, count=2)
        b = p.allocate(1, 200, target(), dlocal=50, count=2)
        # Different streams, same inode: physically adjacent in the pool.
        assert b[0].physical == a[0].physical + 2

    def test_pool_refills_contiguously(self):
        p = self.make(blocks=4)
        a = p.allocate(1, 0, target(), dlocal=0, count=4)
        b = p.allocate(1, 0, target(), dlocal=4, count=4)
        assert b[0].physical == a[0].physical + 4

    def test_release_returns_unconsumed(self):
        p = self.make(blocks=16)
        fsm = p.fsm
        p.allocate(1, 0, target(), dlocal=0, count=4)
        free_before = fsm.free_blocks
        released = p.release(1)
        assert released == 12
        assert fsm.free_blocks == free_before + 12

    def test_release_unknown_file_is_noop(self):
        assert self.make().release(42) == 0

    def test_per_file_pools_are_separate(self):
        p = self.make(blocks=8)
        a = p.allocate(1, 0, target(), dlocal=0, count=2)
        c = p.allocate(2, 0, target(), dlocal=0, count=2)
        # File 2's pool is a different reservation range.
        assert abs(c[0].physical - a[0].physical) >= 2


class TestStatic:
    def make(self) -> StaticPolicy:
        return StaticPolicy(AllocPolicyParams(policy="static"), make_fsm())

    def test_prepare_allocates_unwritten(self):
        p = self.make()
        runs = p.prepare(1, target(), 100)
        assert all(r.unwritten for r in runs)
        assert sum(r.length for r in runs) == 100
        assert p.prepared_blocks(1) == 100

    def test_prepare_contiguous_on_fresh_group(self):
        p = self.make()
        runs = p.prepare(1, target(), 100)
        assert len(runs) == 1

    def test_prepare_zero_is_noop(self):
        assert self.make().prepare(1, target(), 0) == []

    def test_beyond_declared_falls_back(self):
        p = self.make()
        p.prepare(1, target(), 10)
        runs = p.allocate(1, 0, target(), dlocal=10, count=5)
        assert covered(runs) == 5
        assert p.metrics.count("alloc.beyond_declared") == 5

    def test_on_delete_clears_bookkeeping(self):
        p = self.make()
        p.prepare(1, target(), 10)
        p.on_delete(1)
        assert p.prepared_blocks(1) == 0


class TestDelayed:
    def make(self, batch=8) -> DelayedPolicy:
        return DelayedPolicy(
            AllocPolicyParams(policy="delayed", delayed_batch_blocks=batch),
            make_fsm(),
        )

    def test_allocate_buffers(self):
        p = self.make()
        assert p.allocate(1, 0, target(), dlocal=0, count=4) == []
        assert p.pending_blocks(1) == 4

    def test_flush_coalesces_adjacent_ranges(self):
        p = self.make()
        p.allocate(1, 0, target(), dlocal=0, count=4)
        p.allocate(1, 0, target(), dlocal=4, count=4)
        flushed = p.flush(1)
        assert len(flushed) == 1
        _, runs = flushed[0]
        assert len(runs) == 1  # one contiguous allocation for both writes
        assert runs[0].length == 8
        assert p.pending_blocks(1) == 0

    def test_flush_out_of_order_ranges(self):
        p = self.make()
        p.allocate(1, 0, target(), dlocal=8, count=4)
        p.allocate(1, 0, target(), dlocal=0, count=4)
        _, runs = p.flush(1)[0]
        assert sum(r.length for r in runs) == 8
        assert runs[0].dlocal == 0  # sorted by logical offset

    def test_coalesce_helper(self):
        assert _coalesce([(0, 4), (4, 4)]) == [(0, 8)]
        assert _coalesce([(0, 4), (8, 4)]) == [(0, 4), (8, 4)]
        assert _coalesce([(0, 8), (2, 2)]) == [(0, 8)]
        assert _coalesce([]) == []

    def test_on_delete_drops_buffer(self):
        p = self.make()
        p.allocate(1, 0, target(), dlocal=0, count=4)
        p.on_delete(1)
        assert p.flush(1) == []


class TestRegistry:
    def test_all_names_construct(self):
        fsm = make_fsm()
        for name in POLICY_NAMES:
            policy = make_policy(AllocPolicyParams(policy=name), fsm)
            assert policy.name == name

    def test_unknown_rejected_by_params(self):
        with pytest.raises(ConfigError):
            AllocPolicyParams(policy="mystery")
