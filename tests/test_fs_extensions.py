"""Client sessions, crash recovery, defragmentation, hybrid policy."""

import pytest

from repro.errors import ReproError
from repro.fs.client import ClientSession, make_clients
from repro.fs.dataplane import DataPlane
from repro.fs.defrag import defragment
from repro.fs.redbud import RedbudFileSystem
from repro.fs.verify import check_dataplane
from repro.units import KiB, MiB
from repro.workloads.streams import SharedFileMicrobench

from tests.conftest import small_config


class TestClientSession:
    @pytest.fixture
    def fs(self) -> RedbudFileSystem:
        return RedbudFileSystem(small_config())

    def test_stream_identity(self, fs):
        a = ClientSession(fs, 3)
        b = ClientSession(fs, 4)
        assert a.stream(0) != b.stream(0)
        assert a.stream(0) != a.stream(1)

    def test_open_caches_layout(self, fs):
        c = ClientSession(fs, 0)
        c.create("/f")
        c.write("/f", 0, 64 * KiB)
        c.open("/f")
        before = c.stats.mds_requests
        c.open("/f")
        c.open("/f")
        assert c.stats.mds_requests == before
        assert c.stats.layout_cache_hits == 2

    def test_extending_write_invalidates_layout(self, fs):
        c = ClientSession(fs, 0)
        c.create("/f")
        c.write("/f", 0, 64 * KiB)
        c.open("/f")
        before = c.stats.mds_requests
        c.write("/f", 64 * KiB, 64 * KiB)  # new extents -> generation bump
        c.open("/f")
        assert c.stats.mds_requests == before + 1

    def test_overwrite_keeps_cached_layout(self, fs):
        c = ClientSession(fs, 0)
        c.create("/f")
        c.write("/f", 0, 64 * KiB)
        c.open("/f")
        before = c.stats.mds_requests
        c.write("/f", 0, 64 * KiB)  # in-place: no new extents
        c.open("/f")
        assert c.stats.mds_requests == before

    def test_ls_l_fills_attr_cache(self, fs):
        fs.mkdir("/d")
        c = ClientSession(fs, 0)
        for i in range(10):
            c.create(f"/d/f{i}")
        c.ls_l("/d")
        before = c.stats.mds_requests
        for i in range(10):
            c.stat(f"/d/f{i}")
        assert c.stats.mds_requests == before
        assert c.stats.attr_cache_hits == 10

    def test_invalidate(self, fs):
        c = ClientSession(fs, 0)
        c.create("/f")
        c.open("/f")
        c.invalidate("/f")
        before = c.stats.mds_requests
        c.open("/f")
        assert c.stats.mds_requests == before + 1

    def test_unlink_drops_cached_state(self, fs):
        c = ClientSession(fs, 0)
        c.create("/f")
        c.open("/f")
        c.unlink("/f")
        assert "/f" not in c._layouts

    def test_make_clients(self, fs):
        clients = make_clients(fs, 4)
        assert [c.client_id for c in clients] == [0, 1, 2, 3]
        with pytest.raises(ReproError):
            make_clients(fs, 0)


class TestCrashRecovery:
    def test_reclaims_volatile_reservations(self):
        """§III.A: sequential windows are temporary; current-window blocks
        handed to files persist across reboots."""
        plane = DataPlane(small_config(policy="ondemand"))
        free0 = plane.fsm.free_blocks
        f = plane.create_file("/f")
        for i in range(8):
            plane.write(f, 1, i * 16 * KiB, 16 * KiB)
        mapped = f.mapped_blocks
        held_before = free0 - plane.fsm.free_blocks
        assert held_before > mapped  # windows hold extra blocks
        reclaimed = plane.crash_recover()
        assert reclaimed == held_before - mapped
        assert plane.fsm.free_blocks == free0 - mapped
        check_dataplane(plane).raise_if_dirty()

    def test_data_survives_and_fs_remains_usable(self):
        plane = DataPlane(small_config(policy="ondemand"))
        f = plane.create_file("/f")
        plane.write(f, 1, 0, 256 * KiB)
        extents = [(e.logical, e.physical, e.length) for e in f.maps[0]]
        plane.crash_recover()
        assert [(e.logical, e.physical, e.length) for e in f.maps[0]] == extents
        # New writes keep working and never collide with recovered data.
        plane.write(f, 1, 256 * KiB, 256 * KiB)
        check_dataplane(plane).raise_if_dirty()

    def test_reservation_pools_die_with_the_crash(self):
        plane = DataPlane(small_config(policy="reservation"))
        free0 = plane.fsm.free_blocks
        f = plane.create_file("/f")
        plane.write(f, 1, 0, 16 * KiB)  # reserves a pool far larger
        assert free0 - plane.fsm.free_blocks > f.mapped_blocks
        plane.crash_recover()
        assert free0 - plane.fsm.free_blocks == f.mapped_blocks

    def test_delayed_buffers_are_lost(self):
        """Unsynced delayed-allocation data does not survive a crash —
        the classic delayed-allocation durability caveat."""
        plane = DataPlane(small_config(policy="delayed"))
        f = plane.create_file("/f")
        plane.write(f, 1, 0, 64 * KiB)  # buffered, not allocated
        plane.crash_recover()
        assert f.written_blocks == 0
        assert plane.fsync(f) == []  # buffer gone


class TestDefrag:
    def make_fragmented(self):
        plane = DataPlane(small_config(policy="reservation"))
        bench = SharedFileMicrobench(
            nstreams=8, file_bytes=8 * MiB, write_request_bytes=16 * KiB
        )
        f = bench.create_shared_file(plane)
        bench.phase1_write(plane, f)
        plane.close_file(f)
        return plane, f

    def test_reduces_extents(self):
        plane, f = self.make_fragmented()
        result = defragment(plane, f)
        assert result.extents_after < result.extents_before / 4
        assert result.improvement > 4
        assert f.extent_count == result.extents_after

    def test_preserves_data_mapping_coverage(self):
        plane, f = self.make_fragmented()
        written = f.written_blocks
        defragment(plane, f)
        assert f.written_blocks == written
        check_dataplane(plane).raise_if_dirty()

    def test_copy_cost_charged(self):
        plane, f = self.make_fragmented()
        result = defragment(plane, f)
        assert result.blocks_moved == f.written_blocks
        assert result.elapsed_s > 0

    def test_no_space_leak(self):
        plane, f = self.make_fragmented()
        used_before = plane.fsm.used_blocks
        defragment(plane, f)
        assert plane.fsm.used_blocks == used_before
        plane.delete_file(f)
        assert plane.fsm.used_blocks == 0

    def test_empty_file(self):
        plane = DataPlane(small_config())
        f = plane.create_file("/e")
        result = defragment(plane, f)
        assert result.blocks_moved == 0
        assert result.extents_after == 0


class TestHybridPolicy:
    def test_declared_file_gets_fallocate(self):
        plane = DataPlane(small_config(policy="hybrid"))
        f = plane.create_file("/known", expected_bytes=1 * MiB)
        assert f.mapped_blocks == 256
        assert f.extent_count == f.width  # contiguous per slot

    def test_undeclared_file_gets_windows(self):
        plane = DataPlane(small_config(policy="hybrid"))
        f = plane.create_file("/unknown")
        plane.write(f, 7, 0, 16 * KiB)
        slot = f.slot_of(0)
        st = plane.policy.stream_state(f.file_id, 7, f.layout[slot])
        assert st is not None
        assert st.sequential is not None

    def test_mixed_population(self):
        plane = DataPlane(small_config(policy="hybrid"))
        known = plane.create_file("/k", expected_bytes=512 * KiB)
        unknown = plane.create_file("/u")
        for i in range(8):
            plane.write(known, 1, i * 64 * KiB, 64 * KiB)
            plane.write(unknown, 2, i * 64 * KiB, 64 * KiB)
        plane.close_file(known)
        plane.close_file(unknown)
        # Declared file perfectly contiguous; undeclared nearly so.
        assert known.extent_count <= known.width
        assert unknown.extent_count <= 4 * unknown.width
        check_dataplane(plane).raise_if_dirty()

    def test_delete_cleans_both_paths(self):
        plane = DataPlane(small_config(policy="hybrid"))
        free0 = plane.fsm.free_blocks
        k = plane.create_file("/k", expected_bytes=512 * KiB)
        u = plane.create_file("/u")
        plane.write(u, 1, 0, 64 * KiB)
        plane.close_file(u)
        plane.delete_file(k)
        plane.delete_file(u)
        assert plane.fsm.free_blocks == free0
