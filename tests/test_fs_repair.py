"""fsck repair: seeded corruption converges back to a clean report."""

from __future__ import annotations

import pytest

from repro.fault import Corruptor
from repro.fs.dataplane import DataPlane
from repro.fs.stream import make_stream_id
from repro.fs.verify import (
    check_dataplane,
    check_mds,
    repair_dataplane,
    repair_mds,
)
from repro.meta.mds import MetadataServer
from repro.units import KiB

from tests.conftest import small_config


def populated_plane() -> DataPlane:
    plane = DataPlane(small_config())
    for i in range(4):
        f = plane.create_file(f"file{i}")
        for r in range(3):
            reqs = plane.write(f, make_stream_id(i, 0), r * 32 * KiB, 32 * KiB)
            plane.array.submit_batch(reqs)
    return plane


def populated_mds(layout: str) -> MetadataServer:
    mds = MetadataServer(small_config(layout=layout))
    d = mds.mkdir(mds.root, "work")
    sub = mds.mkdir(d, "sub")
    for i in range(25):
        mds.create(d, f"f{i:03d}")
    for i in range(8):
        mds.create(sub, f"g{i:03d}")
    mds.flush()
    return mds


class TestDataplaneRepair:
    def test_corruption_then_repair_converges(self):
        plane = populated_plane()
        codes = Corruptor(0).corrupt_dataplane(plane, nfaults=3)
        assert codes  # a populated plane always offers targets
        before = check_dataplane(plane)
        assert not before.clean
        repair = repair_dataplane(plane)
        assert repair.converged, [f.message for f in repair.after.findings]
        assert repair.actions

    @pytest.mark.parametrize("seed", range(6))
    def test_converges_for_many_seeds(self, seed):
        plane = populated_plane()
        Corruptor(seed).corrupt_dataplane(plane, nfaults=3)
        assert repair_dataplane(plane).converged

    def test_repair_of_clean_plane_is_a_noop(self):
        plane = populated_plane()
        repair = repair_dataplane(plane)
        assert repair.passes == 0
        assert repair.actions == []
        assert repair.converged

    def test_corruptor_is_deterministic(self):
        codes_a = Corruptor(3).corrupt_dataplane(populated_plane(), nfaults=3)
        codes_b = Corruptor(3).corrupt_dataplane(populated_plane(), nfaults=3)
        assert codes_a == codes_b


class TestMdsRepair:
    @pytest.mark.parametrize("layout", ["embedded", "normal"])
    def test_corruption_then_repair_converges(self, layout):
        mds = populated_mds(layout)
        codes = Corruptor(0).corrupt_mds(mds, nfaults=3)
        assert codes
        before = check_mds(mds)
        assert not before.clean
        repair = repair_mds(mds)
        assert repair.converged, [f.message for f in repair.after.findings]

    @pytest.mark.parametrize("layout", ["embedded", "normal"])
    @pytest.mark.parametrize("seed", range(6))
    def test_converges_for_many_seeds(self, layout, seed):
        mds = populated_mds(layout)
        Corruptor(seed).corrupt_mds(mds, nfaults=4)
        assert repair_mds(mds).converged

    @pytest.mark.parametrize("layout", ["embedded", "normal"])
    def test_server_usable_after_repair(self, layout):
        mds = populated_mds(layout)
        Corruptor(1).corrupt_mds(mds, nfaults=3)
        repair_mds(mds)
        d = mds.mkdir(mds.root, "fresh")
        for i in range(5):
            mds.create(d, f"n{i}")
        assert set(mds.readdir(d)) == {f"n{i}" for i in range(5)}
        check_mds(mds).raise_if_dirty()

    def test_repair_of_clean_mds_is_a_noop(self):
        mds = populated_mds("embedded")
        repair = repair_mds(mds)
        assert repair.passes == 0
        assert repair.actions == []
        assert repair.converged
