"""Property-based tests for the disk layer.

Scheduler invariant: arranging a batch may reorder and merge requests but
must preserve *coverage* — every requested block is transferred, reads and
writes never merge into each other, and merges only bridge bounded gaps.

Cache invariant: data the caller asked to read is resident afterwards
(capacity permitting), so an immediate re-read costs no disk time.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheParams, DiskParams, SchedulerParams
from repro.disk.cache import BufferCache
from repro.disk.disk import SimulatedDisk
from repro.disk.model import BlockRequest
from repro.disk.scheduler import ElevatorScheduler, FifoScheduler

CAPACITY = 1 << 14


@st.composite
def request_batches(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    out = []
    for _ in range(n):
        start = draw(st.integers(min_value=0, max_value=CAPACITY - 64))
        nblocks = draw(st.integers(min_value=1, max_value=32))
        is_write = draw(st.booleans())
        out.append(BlockRequest(start, nblocks, is_write))
    return out


def blocks_of(requests, writes: bool):
    out = set()
    for r in requests:
        if r.is_write == writes:
            out |= set(range(r.start, r.end))
    return out


@given(request_batches(), st.integers(min_value=0, max_value=64))
@settings(max_examples=150)
def test_elevator_preserves_coverage(batch, gap):
    sched = ElevatorScheduler(SchedulerParams(merge_gap_blocks=gap))
    arranged = sched.arrange(batch)
    # Every requested block is covered, kind-separated (skip-transfer may
    # cover extra blocks, but only *between* same-kind requests).
    for writes in (True, False):
        assert blocks_of(batch, writes) <= blocks_of(arranged, writes)


@given(request_batches())
@settings(max_examples=100)
def test_fifo_preserves_order_and_coverage(batch):
    sched = FifoScheduler(SchedulerParams(kind="fifo", merge_gap_blocks=0))
    arranged = sched.arrange(batch)
    for writes in (True, False):
        assert blocks_of(batch, writes) == blocks_of(arranged, writes)
    # Zero-gap merging never grows the request count.
    assert len(arranged) <= len(batch)


@given(request_batches(), st.integers(min_value=1, max_value=16))
@settings(max_examples=100)
def test_elevator_matches_independent_oracle(batch, limit):
    """arrange() == per-window sort + adjacent merge, computed here by an
    independent (naive) oracle.

    (A tempting stronger property — "sorted service time <= FIFO service
    time" — is *false*: seek cost is concave in distance, so an unequal
    split of the same total travel can cost less than the elevator's even
    sweep.  hypothesis found the counterexample.)"""
    sched = ElevatorScheduler(SchedulerParams(merge_gap_blocks=0, batch_limit=limit))
    arranged = sched.arrange(batch)

    expected: list[tuple[int, int, bool]] = []
    for i in range(0, len(batch), limit):
        window = sorted(batch[i : i + limit], key=lambda r: (r.start, r.nblocks))
        window_out: list[tuple[int, int, bool]] = []
        for r in window:
            if (
                window_out
                and window_out[-1][2] == r.is_write
                and window_out[-1][0] + window_out[-1][1] == r.start
            ):
                s, n, w = window_out[-1]
                window_out[-1] = (s, n + r.nblocks, w)
            else:
                window_out.append((r.start, r.nblocks, r.is_write))
        expected.extend(window_out)
    assert [(r.start, r.nblocks, r.is_write) for r in arranged] == expected


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2000),
            st.integers(min_value=1, max_value=16),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=100)
def test_cache_read_your_reads(reads):
    disk = SimulatedDisk(DiskParams(capacity_blocks=CAPACITY), SchedulerParams())
    cache = BufferCache(
        CacheParams(capacity_blocks=65536, readahead_max_blocks=32), disk
    )
    for start, n in reads:
        cache.read(start, n)
        # Everything just requested is resident...
        for b in range(start, start + n):
            assert b in cache
        # ...so the immediate re-read is free.
        assert cache.read(start, n) == 0.0


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=500),
            st.integers(min_value=1, max_value=8),
            st.booleans(),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=100)
def test_cache_write_then_read_is_free(ops):
    disk = SimulatedDisk(DiskParams(capacity_blocks=CAPACITY), SchedulerParams())
    cache = BufferCache(
        CacheParams(capacity_blocks=65536, readahead_max_blocks=32), disk
    )
    written: set[int] = set()
    for start, n, sync in ops:
        cache.write(start, n, sync=sync)
        written |= set(range(start, start + n))
    before = disk.metrics.count("disk.read_requests")
    for b in sorted(written):
        cache.read(b, 1)
    assert disk.metrics.count("disk.read_requests") == before
