"""Unit conversions and block arithmetic."""

import pytest

from repro.units import (
    DEFAULT_BLOCK_SIZE,
    GiB,
    KiB,
    MiB,
    block_span,
    blocks_to_bytes,
    bytes_to_blocks,
    fmt_bytes,
)


class TestBytesToBlocks:
    def test_zero(self):
        assert bytes_to_blocks(0) == 0

    def test_one_byte_needs_one_block(self):
        assert bytes_to_blocks(1) == 1

    def test_exact_block(self):
        assert bytes_to_blocks(DEFAULT_BLOCK_SIZE) == 1

    def test_one_over_block_rounds_up(self):
        assert bytes_to_blocks(DEFAULT_BLOCK_SIZE + 1) == 2

    def test_custom_block_size(self):
        assert bytes_to_blocks(1024, block_size=512) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_blocks(-1)


class TestBlocksToBytes:
    def test_roundtrip(self):
        assert blocks_to_bytes(bytes_to_blocks(10 * MiB)) == 10 * MiB

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            blocks_to_bytes(-2)


class TestBlockSpan:
    def test_aligned_range(self):
        assert block_span(0, 4096) == (0, 1)

    def test_straddling_range(self):
        assert block_span(4095, 2) == (0, 2)

    def test_zero_length(self):
        assert block_span(8192, 0) == (2, 0)

    def test_interior(self):
        first, count = block_span(10000, 10000)
        assert first == 2
        assert count == 3  # blocks 2,3,4 cover bytes [8192, 20480)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            block_span(-1, 5)
        with pytest.raises(ValueError):
            block_span(0, -5)


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(512) == "512 B"

    def test_kib(self):
        assert fmt_bytes(4 * KiB) == "4.0 KiB"

    def test_mib(self):
        assert fmt_bytes(int(2.5 * MiB)) == "2.5 MiB"

    def test_gib(self):
        assert fmt_bytes(3 * GiB) == "3.0 GiB"
