"""Striped disk array: address translation, parallel timelines."""

import pytest

from repro.config import DiskParams, SchedulerParams
from repro.disk.array import DiskArray
from repro.disk.model import BlockRequest
from repro.errors import SimulationError


@pytest.fixture
def array() -> DiskArray:
    return DiskArray(4, DiskParams(capacity_blocks=1024), SchedulerParams())


class TestGeometry:
    def test_total_blocks(self, array):
        assert array.total_blocks == 4096

    def test_locate(self, array):
        assert array.locate(0) == (0, 0)
        assert array.locate(1023) == (0, 1023)
        assert array.locate(1024) == (1, 0)
        assert array.locate(4095) == (3, 1023)

    def test_locate_out_of_range(self, array):
        with pytest.raises(SimulationError):
            array.locate(4096)
        with pytest.raises(SimulationError):
            array.locate(-1)

    def test_ndisks_positive(self):
        with pytest.raises(SimulationError):
            DiskArray(0, DiskParams(capacity_blocks=1024))


class TestBatches:
    def test_requests_route_to_owning_disk(self, array):
        array.submit_batch([BlockRequest(1024 + 7, 2)])
        assert array.disks[1].metrics is array.metrics
        assert array.disks[1].head == 9

    def test_cross_disk_request_rejected(self, array):
        with pytest.raises(SimulationError):
            array.submit_batch([BlockRequest(1023, 2)])

    def test_parallel_disks_time_is_max_not_sum(self, array):
        # The same work on two disks takes the max of the two, not the sum.
        t = array.submit_batch(
            [BlockRequest(0, 64), BlockRequest(1024, 64)]
        )
        single = DiskArray(1, DiskParams(capacity_blocks=1024), SchedulerParams())
        t_one = single.submit_batch([BlockRequest(0, 64)])
        assert t == pytest.approx(t_one, rel=0.01)

    def test_elapsed_is_busiest_disk(self, array):
        array.submit_batch([BlockRequest(0, 64)])
        array.submit_batch([BlockRequest(0, 64)])
        array.submit_batch([BlockRequest(1024, 64)])
        assert array.elapsed_s == pytest.approx(array.disks[0].busy_s)
        assert array.total_busy_s == pytest.approx(
            array.disks[0].busy_s + array.disks[1].busy_s
        )

    def test_reset_timelines(self, array):
        array.submit_batch([BlockRequest(0, 4)])
        array.reset_timelines()
        assert array.elapsed_s == 0.0

    def test_empty_batch(self, array):
        assert array.submit_batch([]) == 0.0
