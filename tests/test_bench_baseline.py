"""Benchmark baseline harness: determinism, tolerances, regression gating."""

from __future__ import annotations

import json

import pytest

from repro.bench import baseline as bb
from repro.cli import main


def _collect_small():
    # The full pinned configuration is CI-sized; tests shrink fig6a further.
    from repro.core.run import run

    result = run(
        "fig6a", scale=0.05, seed=0, stream_counts=(8,),
        policies=("reservation", "ondemand"),
    )
    return bb.render(result, scale=0.05, seed=0)


@pytest.fixture(scope="module")
def doc():
    return _collect_small()


class TestRender:
    def test_schema_and_sections(self, doc):
        assert doc["schema_version"] == bb.BENCH_SCHEMA_VERSION
        assert doc["runner"] == "fig6a"
        assert doc["phases"] and doc["layouts"]
        some_phase = next(iter(doc["phases"].values()))
        assert {"elapsed_s", "mib_per_s", "ops_per_s", "bytes", "ops"} <= set(
            some_phase
        )
        some_layout = next(iter(doc["layouts"].values()))
        assert {"extents", "interleave_factor", "seek_cost_s", "contiguity"} <= set(
            some_layout
        )

    def test_same_seed_is_byte_identical(self, doc):
        again = _collect_small()
        assert bb.dumps(doc) == bb.dumps(again)

    def test_dumps_is_canonical(self, doc):
        text = bb.dumps(doc)
        assert text.endswith("\n")
        assert json.loads(text) == doc
        # Keys sorted at every level.
        assert text == json.dumps(doc, sort_keys=True, indent=2) + "\n"


class TestCompare:
    def test_identical_documents_pass(self, doc):
        assert bb.compare(doc, doc) == []

    def test_throughput_drop_is_a_regression(self, doc):
        bad = json.loads(bb.dumps(doc))
        label = next(iter(bad["phases"]))
        bad["phases"][label]["mib_per_s"] *= 0.5
        regs = bb.compare(doc, bad)
        assert any(r.path.endswith("mib_per_s") for r in regs)

    def test_throughput_gain_is_not_a_regression(self, doc):
        better = json.loads(bb.dumps(doc))
        for label in better["phases"]:
            better["phases"][label]["mib_per_s"] *= 2.0
        assert bb.compare(doc, better) == []

    def test_layout_degradation_is_a_regression(self, doc):
        bad = json.loads(bb.dumps(doc))
        tag = next(iter(bad["layouts"]))
        bad["layouts"][tag]["interleave_factor"] *= 2.0
        bad["layouts"][tag]["extents"] *= 3
        regs = bb.compare(doc, bad)
        leaves = {r.path.rsplit("/", 1)[-1] for r in regs}
        assert {"interleave_factor", "extents"} <= leaves

    def test_within_tolerance_passes(self, doc):
        near = json.loads(bb.dumps(doc))
        for label in near["phases"]:
            near["phases"][label]["mib_per_s"] *= 0.95  # inside 10%
        assert bb.compare(doc, near) == []

    def test_tolerance_override(self, doc):
        near = json.loads(bb.dumps(doc))
        for label in near["phases"]:
            near["phases"][label]["mib_per_s"] *= 0.95
        assert bb.compare(doc, near, tolerances={"mib_per_s": 0.01})

    def test_fingerprint_drift_is_a_regression(self, doc):
        other = json.loads(bb.dumps(doc))
        other["fingerprint"] = "deadbeef0000"
        assert any(r.path == "fingerprint" for r in bb.compare(doc, other))

    def test_missing_metric_is_a_regression(self, doc):
        partial = json.loads(bb.dumps(doc))
        tag = next(iter(partial["layouts"]))
        del partial["layouts"][tag]["interleave_factor"]
        regs = bb.compare(doc, partial)
        assert any(r.current is None for r in regs)

    def test_describe_is_readable(self, doc):
        bad = json.loads(bb.dumps(doc))
        label = next(iter(bad["phases"]))
        bad["phases"][label]["mib_per_s"] *= 0.5
        (reg,) = [r for r in bb.compare(doc, bad) if r.path.endswith("mib_per_s")]
        assert "tolerance" in reg.describe()
        assert "-50.0%" in reg.describe()


class TestForcedAllocatorRegression:
    def test_vanilla_swap_fails_the_gate(self, doc, monkeypatch):
        """The acceptance scenario: silently swapping the allocator to the
        vanilla policy must trip the committed-baseline comparison."""
        import repro.core.runners as runners

        real = runners.with_alloc_policy
        monkeypatch.setattr(
            runners, "with_alloc_policy", lambda cfg, policy: real(cfg, "vanilla")
        )
        regressed = _collect_small()
        regs = bb.compare(doc, regressed)
        assert regs, "vanilla allocator swap must register as a regression"


class TestBenchCli:
    def test_run_then_compare_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "bench"
        args = ["--names", "fig6a", "--scale", "smoke", "--seed", "0"]
        assert main(["bench", "run", "--out-dir", str(out), *args]) == 0
        assert (out / "BENCH_fig6a.json").is_file()
        assert (
            main(
                [
                    "bench", "compare", "--baseline-dir", str(out),
                    "--current-dir", str(out), *args,
                ]
            )
            == 0
        )
        assert "fig6a: ok" in capsys.readouterr().out

    def test_compare_exits_nonzero_on_regression(self, tmp_path, capsys):
        out = tmp_path / "bench"
        cur = tmp_path / "cur"
        cur.mkdir()
        args = ["--names", "fig6a", "--scale", "smoke", "--seed", "0"]
        assert main(["bench", "run", "--out-dir", str(out), *args]) == 0
        doc = json.loads((out / "BENCH_fig6a.json").read_text())
        for label in doc["phases"]:
            doc["phases"][label]["mib_per_s"] *= 0.1
        (cur / "BENCH_fig6a.json").write_text(bb.dumps(doc))
        rc = main(
            [
                "bench", "compare", "--baseline-dir", str(out),
                "--current-dir", str(cur), *args,
            ]
        )
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_missing_baseline_fails(self, tmp_path, capsys):
        rc = main(
            [
                "bench", "compare", "--baseline-dir", str(tmp_path),
                "--current-dir", str(tmp_path), "--names", "fig6a",
            ]
        )
        assert rc == 1
        assert "no committed baseline" in capsys.readouterr().out

    def test_layout_artifacts_written(self, tmp_path):
        out = tmp_path / "bench"
        assert (
            main(
                [
                    "bench", "run", "--out-dir", str(out), "--layouts",
                    "--names", "fig6a", "--scale", "smoke",
                ]
            )
            == 0
        )
        art = (out / "LAYOUT_fig6a.txt").read_text()
        assert "interleave-factor" in art and "block map" in art


class TestCommittedBaselines:
    """The repo-root BENCH files must stay in sync with the code."""

    def test_committed_files_parse_and_match_schema(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        for name in bb.PINNED_RUNNERS:
            path = root / bb.baseline_filename(name)
            assert path.is_file(), f"missing committed baseline {path.name}"
            doc = bb.load(str(path))
            assert doc["schema_version"] == bb.BENCH_SCHEMA_VERSION
            assert doc["runner"] == name
            assert doc["scale"] == bb.PINNED_SCALE
            assert doc["seed"] == bb.PINNED_SEED

    def test_committed_fig6a_matches_current_code(self):
        """Byte-for-byte regeneration: if this fails, rerun
        ``python -m repro bench run --out-dir .`` and commit the diff."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        committed = (root / bb.baseline_filename("fig6a")).read_text()
        assert committed == bb.dumps(bb.collect("fig6a"))

    def test_committed_fig6b_unchanged_by_sampled_tracing(self):
        """A SamplingTracer is observe-only: a pinned runner regenerated
        with sampling armed must stay byte-identical to the committed
        baseline (the telemetry acceptance pin)."""
        import pathlib

        from repro.core.run import run
        from repro.obs import SamplingTracer

        root = pathlib.Path(__file__).resolve().parent.parent
        committed = (root / bb.baseline_filename("fig6b")).read_text()
        result = run(
            "fig6b", scale=bb.PINNED_SCALE, seed=bb.PINNED_SEED,
            trace=SamplingTracer(every=3),
        )
        doc = bb.render(result, scale=bb.PINNED_SCALE, seed=bb.PINNED_SEED)
        assert committed == bb.dumps(doc)
