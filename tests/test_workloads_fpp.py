"""File-per-process workload and the §II.A.1 gap experiment."""

import pytest

from repro.core.runners import file_per_process_gap
from repro.errors import ConfigError
from repro.fs.dataplane import DataPlane
from repro.units import KiB, MiB
from repro.workloads.fpp import FilePerProcessBench

from tests.conftest import small_config


class TestFilePerProcessBench:
    def test_creates_one_file_per_stream(self):
        plane = DataPlane(small_config())
        bench = FilePerProcessBench(nstreams=4, total_bytes=4 * MiB)
        files = bench.create_files(plane)
        assert len(files) == 4
        assert len({f.name for f in files}) == 4

    def test_write_covers_every_file(self):
        plane = DataPlane(small_config())
        bench = FilePerProcessBench(
            nstreams=4, total_bytes=4 * MiB, write_request_bytes=16 * KiB
        )
        files = bench.create_files(plane)
        res = bench.phase1_write(plane, files)
        assert res.bytes_moved == 4 * MiB
        for f in files:
            assert f.written_blocks == 256

    def test_read_back_volume(self):
        plane = DataPlane(small_config())
        bench = FilePerProcessBench(nstreams=4, total_bytes=4 * MiB)
        w, r = bench.run(plane)
        assert w.bytes_moved == r.bytes_moved == 4 * MiB

    def test_validation(self):
        with pytest.raises(ConfigError):
            FilePerProcessBench(nstreams=3, total_bytes=4 * MiB + 1)
        with pytest.raises(ConfigError):
            FilePerProcessBench(nstreams=0)


@pytest.mark.slow
class TestGapExperiment:
    def test_gap_shape(self):
        gap = file_per_process_gap(nstreams=32, scale=1.0)
        # Traditional placement: clear multi-x gap (paper: ~5x).
        assert gap.gap("reservation") > 2.0
        # On-demand pulls the shared file toward per-process performance.
        assert gap.gap("ondemand") < gap.gap("reservation")
        assert gap.shared["ondemand"] > gap.shared["reservation"]
