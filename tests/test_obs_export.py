"""Exporter round trips: traces (JSONL/Chrome) and telemetry time series."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.obs import (
    TraceEvent,
    Tracer,
    read_chrome,
    read_jsonl,
    read_timeseries_jsonl,
    timeseries_to_csv,
    timeseries_to_jsonl,
    to_chrome,
    to_jsonl,
)
from repro.obs.timeseries import TimeSeries


class TestTraceRoundTrips:
    def test_empty_event_list_round_trips(self, tmp_path):
        jl = tmp_path / "empty.jsonl"
        ch = tmp_path / "empty.json"
        assert to_jsonl([], jl) == 0
        assert read_jsonl(jl) == []
        assert to_chrome([], ch) == 0
        assert read_chrome(ch) == []
        assert json.loads(ch.read_text())["traceEvents"] == []

    def test_non_ascii_op_names_survive(self, tmp_path):
        events = [
            TraceEvent(t=0.0, layer="meta", op="crèate", dur=0.1, stream=1,
                       attrs={"name": "ファイル.dat"}),
            TraceEvent(t=0.5, layer="disk", op="чтение", stream=None, attrs={}),
        ]
        jl = tmp_path / "uni.jsonl"
        to_jsonl(events, jl)
        assert read_jsonl(jl) == events
        ch = tmp_path / "uni.json"
        to_chrome(events, ch)
        assert read_chrome(ch) == events

    def test_large_ring_buffer_wrap_round_trips(self, tmp_path):
        """Export after heavy eviction: only the retained tail is written,
        in order, and it round-trips exactly."""
        tr = Tracer(capacity=128)
        for i in range(1000):
            tr.emit("disk", "read", t=float(i), dur=0.5, stream=i % 7)
        assert tr.dropped == 1000 - 128
        events = tr.events()
        assert [e.t for e in events] == [float(i) for i in range(872, 1000)]
        path = tmp_path / "wrap.jsonl"
        assert to_jsonl(events, path) == 128
        assert read_jsonl(path) == events


def _sample_ts():
    ts = TimeSeries(window_s=0.5)
    for i in range(6):
        t = i * 0.5 + 0.1
        ts.incr(t, "arrivals", i + 1)
        ts.add(t, "bytes", 64.0 * i)
        ts.observe(t, "data.latency_s", 0.001 * (i + 1))
        ts.observe(t, "data.latency_s", 0.02 * (i + 1))
    ts.incr(4.2, "arrivals")  # leaves gap windows 6 and 7
    return ts.snapshot()


class TestTimeSeriesJsonl:
    def test_round_trip_is_exact(self, tmp_path):
        snap = _sample_ts()
        path = tmp_path / "ts.jsonl"
        assert timeseries_to_jsonl(snap, path) == len(snap)
        back = read_timeseries_jsonl(path)
        assert back == snap
        # Percentile queries and merges agree, not just field equality.
        assert back.percentile_values("data.latency_s", 99.0) == \
            snap.percentile_values("data.latency_s", 99.0)
        assert back.merged("data.latency_s").buckets == \
            snap.merged("data.latency_s").buckets

    def test_stringio_round_trip(self):
        snap = _sample_ts()
        buf = io.StringIO()
        timeseries_to_jsonl(snap, buf)
        buf.seek(0)
        assert read_timeseries_jsonl(buf) == snap

    def test_header_carries_format_and_window(self, tmp_path):
        snap = _sample_ts()
        path = tmp_path / "ts.jsonl"
        timeseries_to_jsonl(snap, path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == "repro.timeseries"
        assert header["window_s"] == snap.window_s
        assert header["frames"] == len(snap)

    def test_empty_snapshot_round_trips(self, tmp_path):
        snap = TimeSeries(window_s=2.0).snapshot()
        path = tmp_path / "empty.jsonl"
        assert timeseries_to_jsonl(snap, path) == 0
        back = read_timeseries_jsonl(path)
        assert back == snap and back.window_s == 2.0

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            read_timeseries_jsonl(io.StringIO(""))

    def test_foreign_header_rejected(self):
        buf = io.StringIO('{"format": "something.else"}\n')
        with pytest.raises(ValueError, match="repro.timeseries"):
            read_timeseries_jsonl(buf)


class TestTimeSeriesCsv:
    def test_shape_and_values(self):
        snap = _sample_ts()
        buf = io.StringIO()
        assert timeseries_to_csv(snap, buf) == len(snap)
        rows = list(csv.reader(io.StringIO(buf.getvalue())))
        header, data = rows[0], rows[1:]
        assert len(data) == len(snap)
        assert header[:2] == ["window", "start_s"]
        assert "arrivals" in header and "bytes" in header
        for col in ("data.latency_s.count", "data.latency_s.p50",
                    "data.latency_s.p99", "data.latency_s.p999"):
            assert col in header
        arrivals = [int(r[header.index("arrivals")]) for r in data]
        assert arrivals == snap.counter_values("arrivals")
        counts = [int(r[header.index("data.latency_s.count")]) for r in data]
        assert counts == [2] * 6 + [0, 0, 0]

    def test_gap_windows_render_zero(self):
        snap = _sample_ts()
        buf = io.StringIO()
        timeseries_to_csv(snap, buf)
        rows = list(csv.reader(io.StringIO(buf.getvalue())))
        header, gap = rows[0], rows[7]  # window 6: untouched
        assert gap[header.index("arrivals")] == "0"
        assert gap[header.index("data.latency_s.p99")] == "0"

    def test_deterministic_output(self, tmp_path):
        snap = _sample_ts()
        a, b = io.StringIO(), io.StringIO()
        timeseries_to_csv(snap, a)
        timeseries_to_csv(snap, b)
        assert a.getvalue() == b.getvalue()
