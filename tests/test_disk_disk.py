"""SimulatedDisk: head tracking, busy-time accounting, batch servicing."""

import pytest

from repro.config import DiskParams, SchedulerParams
from repro.disk.disk import SimulatedDisk
from repro.disk.model import BlockRequest
from repro.errors import SimulationError


@pytest.fixture
def disk() -> SimulatedDisk:
    return SimulatedDisk(
        DiskParams(capacity_blocks=1 << 16),
        SchedulerParams(merge_gap_blocks=0),
    )


class TestSubmit:
    def test_empty_batch_costs_nothing(self, disk):
        assert disk.submit_batch([]) == 0.0
        assert disk.busy_s == 0.0

    def test_busy_time_accumulates(self, disk):
        t1 = disk.submit(BlockRequest(0, 8))
        t2 = disk.submit(BlockRequest(8, 8))
        assert disk.busy_s == pytest.approx(t1 + t2)

    def test_head_moves_to_request_end(self, disk):
        disk.submit(BlockRequest(100, 10))
        assert disk.head == 110

    def test_sequential_continuation_cheaper(self, disk):
        base = SimulatedDisk(disk.params, SchedulerParams(merge_gap_blocks=0))
        t_seq = base.submit(BlockRequest(0, 8))
        t_seq2 = base.submit(BlockRequest(8, 8))  # head at 8: free positioning
        t_far = base.submit(BlockRequest(30000, 8))
        assert t_seq2 < t_far
        assert t_seq2 == pytest.approx(base.model.transfer_time(8))
        assert t_seq >= t_seq2  # first request may position from block 0

    def test_beyond_capacity_rejected(self, disk):
        with pytest.raises(SimulationError):
            disk.submit(BlockRequest(disk.capacity_blocks - 1, 2))

    def test_batch_sorted_by_elevator(self, disk):
        # Two adjacent runs submitted in reverse order service as one
        # positioning: total == positioning(0->0) + transfer(16).
        t = disk.submit_batch([BlockRequest(8, 8), BlockRequest(0, 8)])
        assert t == pytest.approx(disk.model.transfer_time(16))

    def test_metrics(self, disk):
        disk.submit_batch([BlockRequest(0, 4), BlockRequest(1000, 4, is_write=True)])
        assert disk.metrics.count("disk.requests") == 2
        assert disk.metrics.count("disk.blocks") == 8
        assert disk.metrics.count("disk.read_requests") == 1
        assert disk.metrics.count("disk.write_requests") == 1
        assert disk.metrics.count("disk.positionings") >= 1

    def test_reset_timeline_keeps_head(self, disk):
        disk.submit(BlockRequest(500, 4))
        disk.reset_timeline()
        assert disk.busy_s == 0.0
        assert disk.head == 504


class TestFragmentationCost:
    """The core physical claim: scattered layout costs more than contiguous."""

    def test_scattered_blocks_slower_than_contiguous(self, disk):
        contiguous = SimulatedDisk(disk.params, SchedulerParams(merge_gap_blocks=0))
        scattered = SimulatedDisk(disk.params, SchedulerParams(merge_gap_blocks=0))
        t_contig = contiguous.submit_batch([BlockRequest(i * 4, 4) for i in range(16)])
        t_scat = scattered.submit_batch(
            [BlockRequest(i * 2048, 4) for i in range(16)]
        )
        assert t_scat > 3 * t_contig
