"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.core.api
import repro.fs.client
import repro.meta.inumber
import repro.rng
import repro.sim.events
import repro.sim.report
import repro.sim.stats
import repro.sim.visual
import repro.units
import repro.workloads.filesizes
import repro.workloads.replay

MODULES = [
    repro.units,
    repro.rng,
    repro.sim.events,
    repro.sim.report,
    repro.sim.stats,
    repro.sim.visual,
    repro.meta.inumber,
    repro.workloads.filesizes,
    repro.workloads.replay,
    repro.fs.client,
    repro.core.api,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
