"""Parallel fsck: sharded checking equals the serial oracle, byte for byte.

The contract under test (docs/FSCK.md): the vectorized, sharded checkers
in :mod:`repro.fs.verify` render the same ordered findings as the
single-threaded reference walkers at any worker count, over arbitrary
seeded corruption; repair converges from a crashed image; and the online
scrubber drains live corruption while the service workload runs.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import baseline
from repro.config import ConfigError, FsckParams
from repro.core.run import run
from repro.fault import Corruptor, build_crashed_image
from repro.fs.dataplane import DataPlane
from repro.fs.stream import make_stream_id
from repro.fs.verify import (
    FsckReport,
    check_dataplane,
    check_dataplane_reference,
    check_mds,
    check_mds_reference,
    repair_dataplane,
    repair_mds,
    shard_work,
)
from repro.meta.mds import MetadataServer
from repro.units import KiB
from repro.workloads.service import ScrubSpec

from tests.conftest import small_config


def populated_plane() -> DataPlane:
    plane = DataPlane(small_config())
    for i in range(4):
        f = plane.create_file(f"file{i}")
        for r in range(3):
            reqs = plane.write(f, make_stream_id(i, 0), r * 32 * KiB, 32 * KiB)
            plane.array.submit_batch(reqs)
    return plane


def populated_mds(layout: str) -> MetadataServer:
    mds = MetadataServer(small_config(layout=layout))
    d = mds.mkdir(mds.root, "work")
    sub = mds.mkdir(d, "sub")
    for i in range(25):
        mds.create(d, f"f{i:03d}")
    for i in range(8):
        mds.create(sub, f"g{i:03d}")
    mds.flush()
    return mds


def report_key(report: FsckReport) -> tuple:
    return (
        tuple((f.code, f.message) for f in report.findings),
        report.checked_extents,
        report.checked_inodes,
    )


class TestExtentMapsFreeFullRange:
    """Regression: the free-block check covers the extent's whole range,
    not just its first block."""

    def test_free_tail_block_is_detected(self):
        plane = DataPlane(small_config(policy="vanilla"))
        a = plane.create_file("/a")
        plane.write(a, 1, 0, 64 * KiB)
        ext = a.maps[0].extents()[0]
        assert ext.length >= 2
        # Corrupt the books for ONLY the last block of the extent.
        plane.fsm.free(ext.physical + ext.length - 1, 1)
        report = check_dataplane(plane, strict_accounting=False)
        assert report.has("extent-maps-free")

    def test_free_interior_block_matches_reference(self):
        plane = DataPlane(small_config(policy="vanilla"))
        a = plane.create_file("/a")
        plane.write(a, 1, 0, 64 * KiB)
        ext = a.maps[0].extents()[0]
        plane.fsm.free(ext.physical + ext.length // 2, 1)
        sharded = check_dataplane(plane, strict_accounting=False)
        oracle = check_dataplane_reference(plane, strict_accounting=False)
        assert sharded.has("extent-maps-free")
        assert report_key(sharded) == report_key(oracle)


class TestNormalLayoutCodes:
    """Every normal-layout corruption class maps to its stable code and
    repairs back to clean."""

    def _dir(self, mds):
        return next(
            d for d in mds.layout._dirs.values() if "f000" in d.entries or d.entries
        )

    def test_inode_home_mismatch(self):
        mds = populated_mds("normal")
        d = self._dir(mds)
        name = next(iter(d.entries))
        inode = mds.layout.inode_by_number(d.entries[name])
        inode.home_block += 1  # corrupt: itable home drifted
        report = check_mds(mds)
        assert report.has("inode-home-mismatch")
        assert repair_mds(mds).converged
        check_mds(mds).raise_if_dirty()

    def test_entry_unknown_dentry_block(self):
        mds = populated_mds("normal")
        d = self._dir(mds)
        name = next(iter(d.entries))
        d.entry_block[name] = 10**9  # corrupt: entry points nowhere
        report = check_mds(mds)
        assert report.has("entry-unknown-dentry-block")
        assert repair_mds(mds).converged

    def test_dentry_fill_mismatch(self):
        mds = populated_mds("normal")
        d = self._dir(mds)
        d.fill.append(0)  # corrupt: fill vector longer than block list
        report = check_mds(mds)
        assert report.has("dentry-fill-mismatch")
        assert repair_mds(mds).converged

    def test_entry_count_mismatch(self):
        mds = populated_mds("normal")
        d = self._dir(mds)
        d.fill[0] += 1  # corrupt: occupancy over-counts
        report = check_mds(mds)
        assert report.has("entry-count-mismatch")
        assert repair_mds(mds).converged


class TestShardedEqualsReference:
    """Property: sharded-merged reports equal the serial oracle over
    arbitrary Corruptor states, for both planes and both layouts."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), nfaults=st.integers(0, 5))
    def test_dataplane(self, seed, nfaults):
        plane = populated_plane()
        Corruptor(seed).corrupt_dataplane(plane, nfaults=nfaults)
        sharded = check_dataplane(plane, strict_accounting=False)
        oracle = check_dataplane_reference(plane, strict_accounting=False)
        assert report_key(sharded) == report_key(oracle)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), nfaults=st.integers(0, 5))
    @pytest.mark.parametrize("layout", ["embedded", "normal"])
    def test_mds(self, layout, seed, nfaults):
        mds = populated_mds(layout)
        Corruptor(seed).corrupt_mds(mds, nfaults=nfaults)
        sharded = check_mds(mds)
        oracle = check_mds_reference(mds)
        assert report_key(sharded) == report_key(oracle)


class TestWorkerProcesses:
    """jobs=2 really runs shards in worker processes and still merges to
    the identical report."""

    def test_crashed_image_check_identical_across_jobs(self):
        serial = build_crashed_image(scale=0.3, seed=5)
        workers = build_crashed_image(scale=0.3, seed=5)
        rep_1 = check_dataplane(serial.plane, strict_accounting=False).merge(
            check_mds(serial.mds)
        )
        rep_2 = check_dataplane(
            workers.plane, strict_accounting=False, jobs=2
        ).merge(check_mds(workers.mds, jobs=2))
        assert report_key(rep_1) == report_key(rep_2)
        assert not rep_1.clean

    def test_crashed_image_repair_identical_across_jobs(self):
        serial = build_crashed_image(scale=0.3, seed=5)
        workers = build_crashed_image(scale=0.3, seed=5)
        fix_1 = repair_dataplane(serial.plane).merge(repair_mds(serial.mds))
        fix_2 = repair_dataplane(workers.plane, jobs=2).merge(
            repair_mds(workers.mds, jobs=2)
        )
        assert fix_1.converged and fix_2.converged
        assert [(a.code, a.message) for a in fix_1.actions] == [
            (a.code, a.message) for a in fix_2.actions
        ]


class TestCrashedImage:
    def test_deterministic(self):
        a = build_crashed_image(scale=0.3, seed=9)
        b = build_crashed_image(scale=0.3, seed=9)
        assert a.injected == b.injected
        assert a.extents == b.extents and a.inodes == b.inodes
        rep_a = check_dataplane(a.plane, strict_accounting=False)
        rep_b = check_dataplane(b.plane, strict_accounting=False)
        assert report_key(rep_a) == report_key(rep_b)

    def test_shard_work_matches_topology(self):
        img = build_crashed_image(scale=0.3, seed=1)
        data, meta = shard_work(img.plane, img.mds)
        # One shard per populated PAG, never more than the PAG count.
        assert 0 < len(data) <= len(img.plane.fsm.groups)
        assert sum(data) == img.extents
        assert len(meta) >= 1 and sum(meta) > 0


class TestFigFsckRunner:
    def test_byte_identical_documents_across_jobs(self):
        kwargs = dict(scale=0.05, seed=0, multipliers=(1, 2), jobs_points=(1, 2))
        doc_1 = baseline.dumps(
            baseline.render(run("fig_fsck", jobs=1, **kwargs), scale=0.05, seed=0)
        )
        doc_2 = baseline.dumps(
            baseline.render(run("fig_fsck", jobs=2, **kwargs), scale=0.05, seed=0)
        )
        assert doc_1 == doc_2

    def test_modeled_makespan_shrinks_with_workers(self):
        result = run(
            "fig_fsck", scale=0.05, seed=0, multipliers=(1,), jobs_points=(1, 4)
        ).payload
        assert result.converged
        for r in result.runs:
            assert r.check_s[4] < r.check_s[1]
            assert r.speedup(4) > 1.0
            assert r.findings > 0


class TestReportPlumbing:
    """Reports cross process boundaries and merge deterministically."""

    def test_reports_pickle_roundtrip(self):
        img = build_crashed_image(scale=0.3, seed=2)
        report = check_dataplane(img.plane, strict_accounting=False)
        repair = repair_dataplane(img.plane)
        for obj in (report, repair):
            clone = pickle.loads(pickle.dumps(obj))
            assert clone == obj

    def test_merge_is_ordered_concatenation(self):
        img = build_crashed_image(scale=0.3, seed=2)
        data = check_dataplane(img.plane, strict_accounting=False)
        meta = check_mds(img.mds)
        merged = data.merge(meta)
        assert [f.code for f in merged.findings] == [
            f.code for f in data.findings
        ] + [f.code for f in meta.findings]
        assert merged.checked_extents == data.checked_extents
        assert merged.checked_inodes == meta.checked_inodes

    def test_fsck_params_validation(self):
        with pytest.raises(ConfigError):
            FsckParams(check_extent_s=-1.0)

    def test_scrub_spec_validation(self):
        with pytest.raises(ConfigError):
            ScrubSpec(interval_s=0.0)
        with pytest.raises(ConfigError):
            ScrubSpec(nfaults=0)


class TestOnlineScrub:
    def test_converges_under_live_corruption(self):
        result = run(
            "service",
            scale=0.2,
            seed=0,
            streams=200,
            telemetry=True,
            scrub=True,
            scrub_corrupt=5,
            scrub_faults=2,
        )
        cell = result.payload.cells[0]
        scrub = cell.scrub
        assert scrub is not None
        assert scrub.injected, "live corruptor never fired"
        assert scrub.findings > 0 and scrub.repairs > 0
        assert scrub.clean_after, "scrubber failed to drain to clean"
        windows = [
            fr for fr in cell.telemetry.frames
            if any(k.startswith("scrub.") for k in fr.counters)
        ]
        assert windows, "scrub findings never reached telemetry"

    def test_scrub_off_leaves_cell_untouched(self):
        result = run("service", scale=0.2, seed=0, streams=200)
        assert result.payload.cells[0].scrub is None
